package winsim

import "strings"

// Hardware is the machine's hardware profile: everything malware can learn
// through CPUID, RDTSC, volume queries, adapter enumeration, and
// WMI-surface identity strings. Sandboxes and virtual machines carry
// characteristic values here (1 core, 1 GB RAM, small disks, VM vendor
// strings, VM MAC prefixes); Scarecrow's hardware deception layer fakes the
// API-visible subset of them.
type Hardware struct {
	// NumCores is the number of logical processors. The PEB mirrors it.
	NumCores int
	// RAMBytes is the installed physical memory.
	RAMBytes uint64
	// CPUVendor is the CPUID leaf-0 vendor string, e.g. "GenuineIntel".
	CPUVendor string
	// CPUBrand is the CPUID brand string.
	CPUBrand string
	// HypervisorPresent is bit 31 of ECX for CPUID leaf 1. Physical CPUs
	// report false; hypervisors report true.
	HypervisorPresent bool
	// HypervisorVendor is the CPUID leaf 0x40000000 vendor string
	// ("VBoxVBoxVBox", "VMwareVMware", "KVMKVMKVM", "TCGTCGTCGTCG", ...)
	// or empty when no hypervisor leaf is exposed.
	HypervisorVendor string
	// CPUIDCycles is the modeled cycle cost of one CPUID instruction.
	// Hardware-assisted hypervisors trap CPUID, inflating this cost — the
	// side channel behind pafish's rdtsc_diff_vmexit check.
	CPUIDCycles uint64
	// RDTSCCycles is the modeled cycle cost of one RDTSC instruction.
	RDTSCCycles uint64
	// MACs lists the MAC addresses of all network adapters in
	// "xx:xx:xx:xx:xx:xx" form. VirtualBox allocates 08:00:27, VMware
	// 00:0c:29 / 00:50:56 / 00:05:69.
	MACs []string
	// DiskModel is the identity string of the system disk, e.g.
	// "VBOX HARDDISK" or "ST3500418AS".
	DiskModel string
	// BIOSSerial, SystemManufacturer, and SystemProductName are the
	// SMBIOS/WMI identity strings (Win32_BIOS, Win32_ComputerSystem).
	BIOSSerial         string
	SystemManufacturer string
	SystemProductName  string
	// ComputerName and UserName identify the host and the logged-in user.
	ComputerName string
	UserName     string
}

// VM MAC address prefixes commonly checked by evasive malware.
var vmMACPrefixes = []string{"08:00:27", "00:0c:29", "00:50:56", "00:05:69", "00:1c:14", "00:16:3e"}

// HasVMMAC reports whether any adapter carries a known virtual-machine MAC
// prefix.
func (h *Hardware) HasVMMAC() bool {
	for _, mac := range h.MACs {
		lower := strings.ToLower(mac)
		for _, p := range vmMACPrefixes {
			if strings.HasPrefix(lower, p) {
				return true
			}
		}
	}
	return false
}

// CPUIDResult is what a CPUID invocation returns for the leaves the
// simulation models.
type CPUIDResult struct {
	VendorString     string
	HypervisorBit    bool
	HypervisorVendor string
}

// CPUID models executing the CPUID instruction: it advances the clock by
// the modeled trap cost and returns the identity registers.
func (h *Hardware) CPUID(clk *Clock) CPUIDResult {
	clk.AdvanceCycles(h.CPUIDCycles)
	return CPUIDResult{
		VendorString:     h.CPUVendor,
		HypervisorBit:    h.HypervisorPresent,
		HypervisorVendor: h.HypervisorVendor,
	}
}

// RDTSC models executing the RDTSC instruction: it advances the clock by
// the instruction cost and returns the cycle counter.
func (h *Hardware) RDTSC(clk *Clock) uint64 {
	clk.AdvanceCycles(h.RDTSCCycles)
	return clk.Cycles()
}

package winsim

import (
	"testing"
	"time"

	"scarecrow/internal/trace"
)

func TestClockAdvanceAndTicks(t *testing.T) {
	c := NewClock(30*time.Minute, 2.6)
	if c.TickCount() != uint64((30 * time.Minute).Milliseconds()) {
		t.Errorf("TickCount = %d", c.TickCount())
	}
	c.Advance(500 * time.Millisecond)
	if c.Now() != 500*time.Millisecond {
		t.Errorf("Now = %v", c.Now())
	}
	before := c.Cycles()
	c.AdvanceCycles(2600)
	if got := c.Cycles() - before; got < 2599 || got > 2601 {
		t.Errorf("cycle delta = %d, want ~2600", got)
	}
}

func TestClockDeadlinePanics(t *testing.T) {
	c := NewClock(0, 2.6)
	c.SetDeadline(time.Minute)
	defer func() {
		r := recover()
		be, ok := r.(BudgetExceeded)
		if !ok {
			t.Fatalf("recover = %v, want BudgetExceeded", r)
		}
		if be.Deadline != time.Minute {
			t.Errorf("deadline = %v", be.Deadline)
		}
		if c.Now() != time.Minute {
			t.Errorf("clock not pinned to deadline: %v", c.Now())
		}
	}()
	c.Advance(2 * time.Minute)
	t.Fatal("Advance past deadline did not panic")
}

func TestMachineSpawnAndExit(t *testing.T) {
	m := NewBareMetalSandbox(1)
	parent := m.Procs.FindByImage("explorer.exe")[0]
	p := m.SpawnProcess(`C:\Users\john\mal.exe`, "mal.exe", parent)
	if p.ParentPID != parent.PID {
		t.Errorf("ParentPID = %d, want %d", p.ParentPID, parent.PID)
	}
	if p.PEB.NumberOfProcessors != m.HW.NumCores {
		t.Errorf("PEB cores = %d, want %d", p.PEB.NumberOfProcessors, m.HW.NumCores)
	}
	if p.SpawnDepth != 1 {
		t.Errorf("SpawnDepth = %d", p.SpawnDepth)
	}
	creates := m.Tracer.ByKind(trace.KindProcessCreate)
	if len(creates) != 1 || creates[0].Target != p.Image {
		t.Fatalf("creates = %v", creates)
	}
	m.ExitProcess(p, 0)
	if p.State != ProcessExited {
		t.Error("process not exited")
	}
	if len(m.Tracer.ByKind(trace.KindProcessExit)) != 1 {
		t.Error("missing exit event")
	}
	m.ExitProcess(p, 1) // idempotent
	if len(m.Tracer.ByKind(trace.KindProcessExit)) != 1 {
		t.Error("double exit recorded")
	}
}

func TestMachineSleepFactor(t *testing.T) {
	m := NewMachine("test", 1)
	m.SleepFactor = 0.1
	start := m.Clock.Now()
	m.Sleep(time.Second)
	if got := m.Clock.Now() - start; got != 100*time.Millisecond {
		t.Errorf("sleep advanced %v, want 100ms", got)
	}
}

func TestMouseModel(t *testing.T) {
	static := NewMouse(false, 10, 20)
	x1, y1 := static.CursorAt(1000)
	x2, y2 := static.CursorAt(9000)
	if x1 != x2 || y1 != y2 {
		t.Error("static mouse moved")
	}
	active := NewMouse(true, 10, 20)
	ax1, ay1 := active.CursorAt(1000)
	ax2, ay2 := active.CursorAt(9000)
	if ax1 == ax2 && ay1 == ay2 {
		t.Error("active mouse did not move")
	}
}

func TestWindowManagerFind(t *testing.T) {
	wm := NewWindowManager()
	wm.Add(Window{Class: "OLLYDBG", Title: "OllyDbg - [CPU]", PID: 42})
	if _, ok := wm.Find("ollydbg", ""); !ok {
		t.Error("class match failed")
	}
	if _, ok := wm.Find("", "ollydbg - [cpu]"); !ok {
		t.Error("title match failed")
	}
	if _, ok := wm.Find("WinDbgFrameClass", ""); ok {
		t.Error("unexpected match")
	}
	if _, ok := wm.Find("", ""); ok {
		t.Error("empty query must not match")
	}
	wm.RemoveByPID(42)
	if _, ok := wm.Find("OLLYDBG", ""); ok {
		t.Error("window survived RemoveByPID")
	}
}

func TestNetworkResolutionAndSinkhole(t *testing.T) {
	n := NewNetwork()
	n.AddRecord("example.com", "93.184.216.34")
	if addr, ok := n.Resolve("EXAMPLE.COM"); !ok || addr != "93.184.216.34" {
		t.Fatalf("Resolve = %q, %v", addr, ok)
	}
	if _, ok := n.Resolve("iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com"); ok {
		t.Fatal("NX domain resolved without sinkhole")
	}
	n.SinkholeIP = "10.0.0.1"
	addr, ok := n.Resolve("iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com")
	if !ok || addr != "10.0.0.1" {
		t.Fatalf("sinkhole Resolve = %q, %v", addr, ok)
	}
	if !n.HTTPGet("10.0.0.1") {
		t.Error("sinkhole address must answer HTTP")
	}
	if n.HTTPGet("203.0.113.9") {
		t.Error("random address answered HTTP")
	}
	if n.Cache.Len() != 2 {
		t.Errorf("DNS cache = %d entries, want 2", n.Cache.Len())
	}
}

func TestHardwareCPUIDAndRDTSC(t *testing.T) {
	m := NewCuckooSandbox(1, false)
	c1 := m.HW.RDTSC(m.Clock)
	res := m.HW.CPUID(m.Clock)
	c2 := m.HW.RDTSC(m.Clock)
	if !res.HypervisorBit || res.HypervisorVendor != "VBoxVBoxVBox" {
		t.Errorf("CPUID = %+v", res)
	}
	if c2-c1 < 4000 {
		t.Errorf("CPUID cost %d cycles, want >= 4000 on stock VM", c2-c1)
	}
	bm := NewBareMetalSandbox(1)
	b1 := bm.HW.RDTSC(bm.Clock)
	bm.HW.CPUID(bm.Clock)
	b2 := bm.HW.RDTSC(bm.Clock)
	if b2-b1 > 1000 {
		t.Errorf("bare-metal CPUID cost %d cycles, want < 1000", b2-b1)
	}
}

func TestHasVMMAC(t *testing.T) {
	hw := &Hardware{MACs: []string{"08:00:27:11:22:33"}}
	if !hw.HasVMMAC() {
		t.Error("VirtualBox MAC not detected")
	}
	hw.MACs = []string{"3c:97:0e:00:00:01"}
	if hw.HasVMMAC() {
		t.Error("physical MAC flagged")
	}
}

func TestEventLog(t *testing.T) {
	l := NewEventLog()
	l.Append("SCM", 100)
	l.Append("Disk", 20)
	l.Append("SCM", 5)
	l.Append("noop", 0)
	if l.Count() != 125 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.SourceCount() != 2 {
		t.Errorf("SourceCount = %d", l.SourceCount())
	}
}

func TestProfilesDeterministic(t *testing.T) {
	for _, name := range []ProfileName{
		ProfileCleanBareMetal, ProfileBareMetalSandbox, ProfileCuckooSandbox,
		ProfileCuckooHardened, ProfileEndUser, ProfileVirusTotal, ProfileMalwr,
	} {
		t.Run(string(name), func(t *testing.T) {
			a := NewProfileMachine(name, 7)
			b := NewProfileMachine(name, 7)
			if a.FS.CountFiles() != b.FS.CountFiles() {
				t.Error("file counts differ across identical builds")
			}
			if a.Registry.CountKeys() != b.Registry.CountKeys() {
				t.Error("registry counts differ across identical builds")
			}
			if len(a.Procs.All()) != len(b.Procs.All()) {
				t.Error("process counts differ across identical builds")
			}
		})
	}
}

func TestProfileDistinctives(t *testing.T) {
	stock := NewCuckooSandbox(1, false)
	if !stock.Registry.KeyExists(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`) {
		t.Error("stock cuckoo missing guest additions key")
	}
	if !stock.FS.Exists(`C:\Windows\System32\drivers\VBoxMouse.sys`) {
		t.Error("stock cuckoo missing VBoxMouse.sys")
	}
	if stock.Net.SinkholeIP == "" {
		t.Error("cuckoo must sinkhole NX domains")
	}
	hard := NewCuckooSandbox(1, true)
	if hard.HW.HypervisorPresent {
		t.Error("hardened guest must mask the hypervisor bit")
	}
	if !hard.Registry.KeyExists(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`) {
		t.Error("hardening must not remove guest additions")
	}
	eu := NewEndUserMachine(1)
	if eu.Net.SinkholeIP != "" {
		t.Error("end-user machine must not sinkhole NX domains")
	}
	if !eu.HW.HasVMMAC() {
		t.Error("end-user machine should expose the VMware vmnet MAC")
	}
	malwr := NewMalwrSandbox(1)
	if v := malwr.FS.VolumeFor(`C:\`); v.TotalBytes != 5<<30 {
		t.Errorf("malwr disk = %d bytes, want 5GB", v.TotalBytes)
	}
}

func TestOSVersionAtLeast(t *testing.T) {
	if Windows7.AtLeast(6, 2) {
		t.Error("Windows 7 reports >= 6.2")
	}
	if !Windows7.AtLeast(6, 1) || !Windows7.AtLeast(5, 1) {
		t.Error("Windows 7 fails >= 6.1 / >= 5.1")
	}
}

func TestApplyUsageCounts(t *testing.T) {
	m := NewMachine("test", 1)
	m.HW.UserName = "u"
	u := SandboxUsage()
	ApplyUsage(m, u)
	if m.Net.Cache.Len() != u.DNSCacheEntries {
		t.Errorf("dns cache = %d, want %d", m.Net.Cache.Len(), u.DNSCacheEntries)
	}
	runKey, ok := m.Registry.OpenKey(RegRunKey)
	if !ok || runKey.ValueCount() != u.AutoRunPrograms {
		t.Errorf("run entries = %v", runKey)
	}
	dev, ok := m.Registry.OpenKey(RegDeviceClassesKey)
	if !ok || dev.SubkeyCount() != u.DeviceClasses {
		t.Errorf("device classes = %d, want %d", dev.SubkeyCount(), u.DeviceClasses)
	}
	if m.RegistryQuotaUsed != uint64(u.RegistryQuotaMB)<<20 {
		t.Errorf("quota = %d", m.RegistryQuotaUsed)
	}
}

func TestProcessModuleList(t *testing.T) {
	m := NewBareMetalSandbox(1)
	p := m.SpawnProcess(`C:\a.exe`, "", nil)
	if !p.HasModule("ntdll.dll") || !p.HasModule("KERNEL32.DLL") {
		t.Error("default modules missing")
	}
	if !p.LoadModule("user32.dll") {
		t.Error("new module not loaded")
	}
	if p.LoadModule("USER32.dll") {
		t.Error("duplicate module loaded twice")
	}
	got, ok := m.Procs.Get(p.PID)
	if !ok || got != p {
		t.Error("Get by PID failed")
	}
	if _, ok := m.Procs.Get(999999); ok {
		t.Error("bogus PID found")
	}
	names := m.Procs.ImageNames()
	found := false
	for _, n := range names {
		if n == "a.exe" {
			found = true
		}
	}
	if !found {
		t.Errorf("ImageNames = %v", names)
	}
}

func TestNetworkAuxiliary(t *testing.T) {
	n := NewNetwork()
	n.AddRecord("real.example", "198.51.100.1")
	if !n.Exists("REAL.example") {
		t.Error("Exists case-insensitivity")
	}
	if n.Exists("fake.example") {
		t.Error("NX domain exists")
	}
	n.MarkReachable("10.9.9.9")
	if !n.HTTPGet("10.9.9.9") {
		t.Error("MarkReachable not honored")
	}
	n.Cache.Add("a.example")
	n.Cache.Add("b.example")
	n.Cache.Add("a.example")
	if got := n.Cache.Entries(); len(got) != 2 || got[0] != "a.example" {
		t.Errorf("cache entries = %v", got)
	}
	l := NewEventLog()
	l.Append("S1", 3)
	l.Append("S2", 1)
	if got := l.Sources(); len(got) != 2 || got[0] != "S1" {
		t.Errorf("sources = %v", got)
	}
}

func TestRegistryValueKindsAndNames(t *testing.T) {
	r := NewRegistry()
	if err := r.SetValue(`HKLM\V`, "q", QWordValue(1<<40)); err != nil {
		t.Fatal(err)
	}
	v, ok := r.QueryValue(`HKLM\V`, "q")
	if !ok || v.Type != RegQWord || v.Num != 1<<40 {
		t.Errorf("qword = %+v", v)
	}
	if err := r.SetValue(`HKLM\V`, "b", BinaryValue([]byte{1, 2})); err != nil {
		t.Fatal(err)
	}
	k, _ := r.OpenKey(`HKLM\V`)
	if k.Name() != "V" {
		t.Errorf("Name = %q", k.Name())
	}
	names := k.ValueNames()
	if len(names) != 2 || names[0] != "b" || names[1] != "q" {
		t.Errorf("ValueNames = %v", names)
	}
}

func TestFileSystemWalkAndVolumes(t *testing.T) {
	fs := NewFileSystem()
	fs.Touch(`C:\x\a.bin`, 1)
	fs.AddVolume(&Volume{Letter: 'D', TotalBytes: 1 << 30, FreeBytes: 1 << 29})
	vols := fs.Volumes()
	if len(vols) != 2 || vols[0].Letter != 'C' || vols[1].Letter != 'D' {
		t.Errorf("volumes = %v", vols)
	}
	var paths []string
	fs.Walk(func(info FileInfo) { paths = append(paths, info.Path) })
	if len(paths) < 2 {
		t.Errorf("walk visited %d nodes", len(paths))
	}
}

func TestClockDeadlineAccessorAndMachineRand(t *testing.T) {
	c := NewClock(0, 0) // zero rate falls back to the default
	c.SetDeadline(time.Second)
	if c.Deadline() != time.Second {
		t.Error("Deadline accessor")
	}
	c.SetDeadline(0)
	c.Advance(time.Hour) // unbounded again
	m := NewMachine("t", 5)
	if m.Rand() == nil {
		t.Error("machine rand nil")
	}
	a := m.Rand().Int63()
	b := NewMachine("t", 5).Rand().Int63()
	if a != b {
		t.Error("seeded rand not deterministic")
	}
}

func TestWindowClasses(t *testing.T) {
	wm := NewWindowManager()
	wm.Add(Window{Class: "B", PID: 1})
	wm.Add(Window{Class: "a", PID: 2})
	wm.Add(Window{Class: "b", PID: 3}) // dedup case-insensitively
	if got := wm.Classes(); len(got) != 2 {
		t.Errorf("classes = %v", got)
	}
}

package winsim

import (
	"fmt"
	"strconv"
)

// Registry paths of the wear-and-tear artifacts from Miramirkhani et al.
// (Table III of the paper). The simulation stores them where the real
// artifacts live so that the same API call sequences (NtOpenKeyEx,
// NtQueryKey, ...) observe them.
const (
	RegRunKey           = `HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\Run`
	RegDeviceClassesKey = `HKEY_LOCAL_MACHINE\SYSTEM\CurrentControlSet\Control\DeviceClasses`
	RegUninstallKey     = `HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\Uninstall`
	RegSharedDllsKey    = `HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\SharedDlls`
	RegAppPathsKey      = `HKEY_LOCAL_MACHINE\Software\Microsoft\Windows\CurrentVersion\App Paths`
	RegActiveSetupKey   = `HKEY_LOCAL_MACHINE\Software\Microsoft\Active Setup\Installed Components`
	RegUserAssistKey    = `HKEY_CURRENT_USER\Software\Microsoft\Windows\CurrentVersion\Explorer\UserAssist`
	RegShimCacheKey     = `HKEY_LOCAL_MACHINE\SYSTEM\CurrentControlSet\Control\Session Manager\AppCompatCache`
	RegMUICacheKey      = `HKEY_CURRENT_USER\Software\Classes\Local Settings\Software\Microsoft\Windows\Shell\MuiCache`
	RegFirewallRulesKey = `HKEY_LOCAL_MACHINE\SYSTEM\ControlSet001\services\SharedAccess\Parameters\FirewallPolicy\FirewallRules`
	RegUSBStorKey       = `HKEY_LOCAL_MACHINE\SYSTEM\CurrentControlSet\Services\UsbStor`

	// Additional usage-bearing keys read by the non-faked wear-and-tear
	// artifacts (internal/weartear).
	RegTypedURLsKey      = `HKEY_CURRENT_USER\Software\Microsoft\Internet Explorer\TypedURLs`
	RegRecentDocsKey     = `HKEY_CURRENT_USER\Software\Microsoft\Windows\CurrentVersion\Explorer\RecentDocs`
	RegRunMRUKey         = `HKEY_CURRENT_USER\Software\Microsoft\Windows\CurrentVersion\Explorer\RunMRU`
	RegMountedDevicesKey = `HKEY_LOCAL_MACHINE\SYSTEM\MountedDevices`
	RegNetworkProfiles   = `HKEY_LOCAL_MACHINE\SOFTWARE\Microsoft\Windows NT\CurrentVersion\NetworkList\Profiles`
	RegMappedDrivesKey   = `HKEY_CURRENT_USER\Network`
	RegProxySettingsKey  = `HKEY_CURRENT_USER\Software\Microsoft\Windows\CurrentVersion\Internet Settings`
)

// UsageLevel quantifies how "worn" a machine looks: the entry counts behind
// each wear-and-tear artifact. Sandboxes run close to pristine images
// (small counts); actively used end-user machines accumulate large ones.
type UsageLevel struct {
	DNSCacheEntries   int
	EventLogEvents    int
	EventLogSources   int
	DeviceClasses     int
	AutoRunPrograms   int
	RegistryQuotaMB   int
	UninstallEntries  int
	SharedDlls        int
	MissingDlls       int // subset of SharedDlls whose backing file is absent
	AppPaths          int
	ActiveSetup       int
	UserAssistKeys    int
	UserAssistEntries int
	ShimCacheEntries  int
	MUICacheEntries   int
	FirewallRules     int
	USBDevices        int
	// InstalledPrograms adds per-program files and Start Menu shortcuts
	// alongside the Uninstall entries.
	InstalledPrograms int
	// BrowserHistory adds browser profile files (cookies, cache entries).
	BrowserHistory int

	// Further artifacts read by the wear-and-tear fingerprinter.
	TypedURLs       int
	RecentDocs      int
	RunMRU          int
	MountedDevices  int
	NetworkProfiles int
	MappedDrives    int
	ProxyConfigured bool
	HostsEntries    int
	DownloadsFiles  int
	DocumentsFiles  int
	DesktopFiles    int
	TempFiles       int
	CookieFiles     int
	RunningApps     int
}

// SandboxUsage is the near-pristine usage level of a freshly provisioned
// analysis image, matching the sandbox statistics the paper says it took
// its deceptive wear-and-tear values from.
func SandboxUsage() UsageLevel {
	return UsageLevel{
		DNSCacheEntries:   4,
		EventLogEvents:    8000,
		EventLogSources:   9,
		DeviceClasses:     29,
		AutoRunPrograms:   3,
		RegistryQuotaMB:   53,
		UninstallEntries:  6,
		SharedDlls:        115,
		MissingDlls:       2,
		AppPaths:          14,
		ActiveSetup:       12,
		UserAssistKeys:    2,
		UserAssistEntries: 7,
		ShimCacheEntries:  40,
		MUICacheEntries:   12,
		FirewallRules:     130,
		USBDevices:        1,
		InstalledPrograms: 4,
		BrowserHistory:    0,
		TypedURLs:         1,
		RecentDocs:        2,
		RunMRU:            0,
		MountedDevices:    3,
		NetworkProfiles:   1,
		MappedDrives:      0,
		ProxyConfigured:   false,
		HostsEntries:      1,
		DownloadsFiles:    1,
		DocumentsFiles:    0,
		DesktopFiles:      2,
		TempFiles:         5,
		CookieFiles:       0,
		RunningApps:       0,
	}
}

// EndUserUsage is the usage level of an actively used end-user machine.
func EndUserUsage() UsageLevel {
	return UsageLevel{
		DNSCacheEntries:   130,
		EventLogEvents:    64000,
		EventLogSources:   58,
		DeviceClasses:     210,
		AutoRunPrograms:   11,
		RegistryQuotaMB:   210,
		UninstallEntries:  74,
		SharedDlls:        820,
		MissingDlls:       37,
		AppPaths:          66,
		ActiveSetup:       38,
		UserAssistKeys:    2,
		UserAssistEntries: 160,
		ShimCacheEntries:  780,
		MUICacheEntries:   240,
		FirewallRules:     520,
		USBDevices:        12,
		InstalledPrograms: 42,
		BrowserHistory:    900,
		TypedURLs:         45,
		RecentDocs:        80,
		RunMRU:            14,
		MountedDevices:    18,
		NetworkProfiles:   7,
		MappedDrives:      2,
		ProxyConfigured:   true,
		HostsEntries:      9,
		DownloadsFiles:    60,
		DocumentsFiles:    140,
		DesktopFiles:      24,
		TempFiles:         220,
		CookieFiles:       350,
		RunningApps:       12,
	}
}

// ApplyUsage writes the wear-and-tear state for the given usage level onto
// the machine: registry entries, event log contents, DNS cache, installed
// program files, and the registry quota figure.
func ApplyUsage(m *Machine, u UsageLevel) {
	reg := m.Registry

	for i := 0; i < u.AutoRunPrograms; i++ {
		name := fmt.Sprintf("StartupApp%02d", i+1)
		mustSet(reg, RegRunKey, name, StringValue(`C:\Program Files\`+name+`\`+name+`.exe`))
	}
	for i := 0; i < u.DeviceClasses; i++ {
		mustCreate(reg, RegDeviceClassesKey+`\`+fmt.Sprintf("{deadbeef-0000-0000-0000-%012d}", i+1))
	}
	for i := 0; i < u.UninstallEntries; i++ {
		key := RegUninstallKey + `\` + fmt.Sprintf("Product%03d", i+1)
		mustCreate(reg, key)
		mustSet(reg, key, "DisplayName", StringValue(fmt.Sprintf("Product %03d", i+1)))
	}
	for i := 0; i < u.SharedDlls; i++ {
		path := fmt.Sprintf(`C:\Windows\System32\shared%04d.dll`, i+1)
		mustSet(reg, RegSharedDllsKey, path, DWordValue(1))
		if i >= u.SharedDlls-u.MissingDlls {
			continue // missing DLL: registered but never written to disk
		}
		m.FS.Touch(path, 64<<10)
	}
	for i := 0; i < u.AppPaths; i++ {
		mustCreate(reg, RegAppPathsKey+`\`+fmt.Sprintf("app%02d.exe", i+1))
	}
	for i := 0; i < u.ActiveSetup; i++ {
		mustCreate(reg, RegActiveSetupKey+`\`+fmt.Sprintf("{c0mp0nent-%04d}", i+1))
	}
	for i := 0; i < u.UserAssistKeys; i++ {
		countKey := RegUserAssistKey + `\` + fmt.Sprintf(`{guid-%04d}\Count`, i+1)
		mustCreate(reg, countKey)
		for j := 0; j < u.UserAssistEntries/max(1, u.UserAssistKeys); j++ {
			mustSet(reg, countKey, fmt.Sprintf("rot13-entry-%04d", j+1), BinaryValue([]byte{0x2}))
		}
	}
	for i := 0; i < u.ShimCacheEntries; i++ {
		mustSet(reg, RegShimCacheKey, fmt.Sprintf("entry%04d", i+1), BinaryValue([]byte{0x1}))
	}
	for i := 0; i < u.MUICacheEntries; i++ {
		mustSet(reg, RegMUICacheKey, fmt.Sprintf(`C:\Program Files\app%03d\app.exe`, i+1), StringValue("App"))
	}
	for i := 0; i < u.FirewallRules; i++ {
		mustSet(reg, RegFirewallRulesKey, fmt.Sprintf("Rule%04d", i+1), StringValue("v2.10|Action=Allow|"))
	}
	for i := 0; i < u.USBDevices; i++ {
		mustCreate(reg, RegUSBStorKey+`\`+fmt.Sprintf("Disk&Ven_Vendor%02d", i+1))
	}

	m.EventLog.Append("Service Control Manager", u.EventLogEvents/2)
	perSource := u.EventLogEvents / 2 / max(1, u.EventLogSources-1)
	for i := 0; i < u.EventLogSources-1; i++ {
		m.EventLog.Append("Source-"+strconv.Itoa(i+1), perSource)
	}

	for i := 0; i < u.DNSCacheEntries; i++ {
		domain := fmt.Sprintf("site%03d.example.com", i+1)
		m.Net.AddRecord(domain, SyntheticAddr(domain))
		m.Net.Cache.Add(domain)
	}

	m.RegistryQuotaUsed = uint64(u.RegistryQuotaMB) << 20

	for i := 0; i < u.InstalledPrograms; i++ {
		dir := fmt.Sprintf(`C:\Program Files\Vendor%02d\App`, i+1)
		m.FS.Touch(dir+`\app.exe`, 2<<20)
		m.FS.Touch(dir+`\app.dll`, 1<<20)
		m.FS.Touch(fmt.Sprintf(`C:\ProgramData\Microsoft\Windows\Start Menu\Programs\App%02d.lnk`, i+1), 1<<10)
	}
	for i := 0; i < u.BrowserHistory; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Users\%s\AppData\Local\Browser\Cache\f_%06d`, m.HW.UserName, i+1), 16<<10)
	}

	for i := 0; i < u.TypedURLs; i++ {
		mustSet(reg, RegTypedURLsKey, fmt.Sprintf("url%d", i+1), StringValue(fmt.Sprintf("http://site%03d.example.com/", i+1)))
	}
	for i := 0; i < u.RecentDocs; i++ {
		mustSet(reg, RegRecentDocsKey, strconv.Itoa(i), BinaryValue([]byte{0x3}))
	}
	for i := 0; i < u.RunMRU; i++ {
		mustSet(reg, RegRunMRUKey, string(rune('a'+i%26)), StringValue("cmd"))
	}
	for i := 0; i < u.MountedDevices; i++ {
		mustSet(reg, RegMountedDevicesKey, fmt.Sprintf(`\DosDevices\%c:`, 'C'+i), BinaryValue([]byte{0x4}))
	}
	for i := 0; i < u.NetworkProfiles; i++ {
		mustCreate(reg, RegNetworkProfiles+`\`+fmt.Sprintf("{net-profile-%04d}", i+1))
	}
	for i := 0; i < u.MappedDrives; i++ {
		mustCreate(reg, RegMappedDrivesKey+`\`+string(rune('S'+i)))
	}
	mustCreate(reg, RegProxySettingsKey)
	if u.ProxyConfigured {
		mustSet(reg, RegProxySettingsKey, "ProxyEnable", DWordValue(1))
	} else {
		mustSet(reg, RegProxySettingsKey, "ProxyEnable", DWordValue(0))
	}

	var hosts []byte
	for i := 0; i < u.HostsEntries; i++ {
		hosts = append(hosts, []byte(fmt.Sprintf("10.1.2.%d host%d.corp.example\r\n", i+1, i+1))...)
	}
	if err := m.FS.WriteFile(`C:\Windows\System32\drivers\etc\hosts`, hosts); err != nil {
		panic(err)
	}

	user := m.HW.UserName
	for i := 0; i < u.DownloadsFiles; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Users\%s\Downloads\file%04d.bin`, user, i+1), 1<<20)
	}
	for i := 0; i < u.DocumentsFiles; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Users\%s\Documents\doc%04d.docx`, user, i+1), 64<<10)
	}
	for i := 0; i < u.DesktopFiles; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Users\%s\Desktop\item%03d.lnk`, user, i+1), 1<<10)
	}
	for i := 0; i < u.TempFiles; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Windows\Temp\tmp%05d.tmp`, i+1), 4<<10)
	}
	for i := 0; i < u.CookieFiles; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\Users\%s\AppData\Roaming\Browser\Cookies\c_%06d.txt`, user, i+1), 1<<10)
	}
	for i := 0; i < u.RunningApps; i++ {
		img := fmt.Sprintf(`C:\Program Files\Vendor%02d\App\app.exe`, i%max(1, u.InstalledPrograms)+1)
		p := m.Procs.Create(img, img, 4, 0)
		p.State = ProcessRunning
	}
}

func mustSet(r *Registry, key, name string, v Value) {
	if err := r.SetValue(key, name, v); err != nil {
		panic(fmt.Sprintf("winsim: populating %s: %v", key, err))
	}
}

func mustCreate(r *Registry, key string) {
	if _, err := r.CreateKey(key); err != nil {
		panic(fmt.Sprintf("winsim: creating %s: %v", key, err))
	}
}

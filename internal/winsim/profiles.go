package winsim

import (
	"fmt"
	"time"
)

// ProfileName identifies an environment profile.
type ProfileName string

// The environment profiles the evaluation uses, mirroring Figure 3 and
// Table II of the paper plus the two public sandboxes crawled in §II-C.
const (
	// ProfileCleanBareMetal is the pristine bare-metal reference image the
	// crawler diffs public-sandbox resources against.
	ProfileCleanBareMetal ProfileName = "clean-baremetal"
	// ProfileBareMetalSandbox is the paper's bare-metal analysis cluster
	// machine (Deep Freeze reset, python agent, Fibratus tracing).
	ProfileBareMetalSandbox ProfileName = "baremetal-sandbox"
	// ProfileCuckooSandbox is a stock Cuckoo 2.0.3 guest on VirtualBox.
	ProfileCuckooSandbox ProfileName = "cuckoo-vbox-sandbox"
	// ProfileCuckooHardened is the same guest after the paper's
	// transparency modifications (masked CPUID results, updated MAC, DMI
	// spoofing, accurate timing).
	ProfileCuckooHardened ProfileName = "cuckoo-vbox-hardened"
	// ProfileEndUser is an actively used end-user machine with VMware
	// Workstation installed ("due to work requirements").
	ProfileEndUser ProfileName = "end-user"
	// ProfileVirusTotal and ProfileMalwr model the two public online
	// sandboxes crawled for deceptive resources in §II-C.
	ProfileVirusTotal ProfileName = "virustotal-sandbox"
	ProfileMalwr      ProfileName = "malwr-sandbox"
)

// Profiles lists every profile NewProfileMachine accepts, in declaration
// order. Front ends (scarecrowd request validation, CLI usage strings)
// enumerate this instead of hard-coding names.
func Profiles() []ProfileName {
	return []ProfileName{
		ProfileCleanBareMetal, ProfileBareMetalSandbox,
		ProfileCuckooSandbox, ProfileCuckooHardened,
		ProfileEndUser, ProfileVirusTotal, ProfileMalwr,
	}
}

// ValidProfile reports whether name is a profile NewProfileMachine can
// build (which panics on unknown names — validate first at trust
// boundaries).
func ValidProfile(name ProfileName) bool {
	for _, p := range Profiles() {
		if p == name {
			return true
		}
	}
	return false
}

// rdtsc/cpuid timing model shared by the profiles. Pafish's
// rdtsc_diff_vmexit check flags environments whose CPUID cost exceeds
// roughly 1000 cycles. Hardware-assisted hypervisors trap CPUID (stock
// Cuckoo: ~4200 cycles); the end-user machine's cost sits above the
// threshold too (~1500 cycles) because its host-side VMM and power
// management perturb the TSC — the "unreliable timing" false positive the
// paper reports; the hardened guest uses paravirtual TSC offsetting that
// keeps the visible cost below the threshold (~800 cycles).
const (
	cpuidCyclesBareMetal = 150
	cpuidCyclesStockVM   = 4200
	cpuidCyclesHardened  = 800
	cpuidCyclesEndUser   = 1500
	rdtscCycles          = 30
)

// NewProfileMachine builds a fresh machine for the named profile and seed.
func NewProfileMachine(name ProfileName, seed int64) *Machine {
	switch name {
	case ProfileCleanBareMetal:
		return NewCleanBareMetal(seed)
	case ProfileBareMetalSandbox:
		return NewBareMetalSandbox(seed)
	case ProfileCuckooSandbox:
		return NewCuckooSandbox(seed, false)
	case ProfileCuckooHardened:
		return NewCuckooSandbox(seed, true)
	case ProfileEndUser:
		return NewEndUserMachine(seed)
	case ProfileVirusTotal:
		return NewVirusTotalSandbox(seed)
	case ProfileMalwr:
		return NewMalwrSandbox(seed)
	default:
		panic(fmt.Sprintf("winsim: unknown profile %q", name))
	}
}

// applyWindowsBase installs the OS content every Windows 7 machine shares:
// core processes, system files, and baseline registry identity.
func applyWindowsBase(m *Machine) {
	fs := m.FS
	for _, f := range []string{
		`C:\Windows\System32\ntdll.dll`,
		`C:\Windows\System32\kernel32.dll`,
		`C:\Windows\System32\user32.dll`,
		`C:\Windows\System32\advapi32.dll`,
		`C:\Windows\System32\ws2_32.dll`,
		`C:\Windows\System32\shell32.dll`,
		`C:\Windows\System32\cmd.exe`,
		`C:\Windows\System32\notepad.exe`,
		`C:\Windows\System32\svchost.exe`,
		`C:\Windows\explorer.exe`,
	} {
		fs.Touch(f, 512<<10)
	}
	fs.MkdirAll(`C:\Users`)
	fs.MkdirAll(`C:\Program Files`)
	fs.MkdirAll(`C:\ProgramData`)
	fs.MkdirAll(`C:\Windows\Temp`)

	reg := m.Registry
	mustSet(reg, `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`, "ProductName", StringValue("Windows 7 Professional"))
	mustSet(reg, `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`, "CurrentVersion", StringValue("6.1"))
	mustSet(reg, `HKLM\SOFTWARE\Microsoft\Windows NT\CurrentVersion`, "CurrentBuild", StringValue("7601"))
	mustSet(reg, `HKLM\HARDWARE\Description\System`, "SystemBiosDate", StringValue("03/14/14"))
	mustSet(reg, `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", StringValue("LENOVO - 1140"))
	mustSet(reg, `HKLM\HARDWARE\Description\System`, "VideoBiosVersion", StringValue("Hardware Version 0.0"))
	mustCreate(reg, `HKLM\SYSTEM\CurrentControlSet\Enum\IDE`)

	// Core system processes. PID order is deterministic.
	for _, img := range []string{
		`C:\Windows\System32\smss.exe`,
		`C:\Windows\System32\csrss.exe`,
		`C:\Windows\System32\winlogon.exe`,
		`C:\Windows\System32\services.exe`,
		`C:\Windows\System32\lsass.exe`,
		`C:\Windows\System32\svchost.exe`,
		`C:\Windows\System32\svchost.exe`,
		`C:\Windows\explorer.exe`,
	} {
		p := m.Procs.Create(img, img, 4, 0)
		p.State = ProcessRunning
		p.PEB.NumberOfProcessors = m.HW.NumCores
	}
	m.Windows.Add(Window{Class: "Shell_TrayWnd", Title: "", PID: pidOf(m, "explorer.exe")})
	m.Windows.Add(Window{Class: "Progman", Title: "Program Manager", PID: pidOf(m, "explorer.exe")})
}

func pidOf(m *Machine, image string) int {
	procs := m.Procs.FindByImage(image)
	if len(procs) == 0 {
		return 0
	}
	return procs[0].PID
}

// setDiskIdentity writes the SCSI Identifier registry value that pafish's
// disk-model checks read, alongside the hardware profile's model string.
func setDiskIdentity(m *Machine, model string) {
	m.HW.DiskModel = model
	mustSet(m.Registry,
		`HKLM\HARDWARE\DEVICEMAP\Scsi\Scsi Port 0\Scsi Bus 0\Target Id 0\Logical Unit Id 0`,
		"Identifier", StringValue(model))
}

// NewCleanBareMetal builds the pristine bare-metal reference image.
func NewCleanBareMetal(seed int64) *Machine {
	return NewCleanBareMetalWithUsage(seed, SandboxUsage())
}

// NewCleanBareMetalWithUsage builds the reference image at a specific
// usage level (for wear-and-tear training corpora).
func NewCleanBareMetalWithUsage(seed int64, usage UsageLevel) *Machine {
	m := NewMachine(string(ProfileCleanBareMetal), seed)
	m.Clock = NewClock(30*time.Minute, 2.6)
	m.HW = &Hardware{
		NumCores: 4, RAMBytes: 8 << 30,
		CPUVendor: "GenuineIntel", CPUBrand: "Intel(R) Core(TM) i5-4570 CPU @ 3.20GHz",
		CPUIDCycles: cpuidCyclesBareMetal, RDTSCCycles: rdtscCycles,
		MACs:       []string{"3c:97:0e:12:34:56"},
		BIOSSerial: "PF0A1B2C", SystemManufacturer: "LENOVO", SystemProductName: "10AB003TUS",
		ComputerName: "LAB-REF-01", UserName: "john",
	}
	applyWindowsBase(m)
	setDiskIdentity(m, "ST3500418AS")
	m.FS.AddVolume(&Volume{Letter: 'C', TotalBytes: 500 << 30, FreeBytes: 400 << 30, SerialNumber: 0x7A3B11EF})
	ApplyUsage(m, usage)
	return m
}

// NewBareMetalSandbox builds one machine of the paper's bare-metal analysis
// cluster: physically identical to the clean reference, plus the analysis
// agent and kernel tracer, and no human at the mouse.
func NewBareMetalSandbox(seed int64) *Machine {
	m := NewCleanBareMetal(seed)
	m.Profile = string(ProfileBareMetalSandbox)
	m.HW.ComputerName = "ANALYSIS-07"
	m.Mouse = NewMouse(false, 512, 384)

	// The python analysis agent and the Fibratus tracer run alongside the
	// sample; the agent is the parent of every analyzed process.
	agent := m.Procs.Create(`C:\analysis\python.exe`, `python.exe C:\analysis\agent.py`, 4, 0)
	agent.State = ProcessRunning
	fib := m.Procs.Create(`C:\analysis\fibratus.exe`, `fibratus.exe capture`, agent.PID, 0)
	fib.State = ProcessRunning
	m.FS.Touch(`C:\analysis\agent.py`, 12<<10)
	m.FS.Touch(`C:\analysis\python.exe`, 3<<20)
	m.FS.Touch(`C:\analysis\fibratus.exe`, 9<<20)
	return m
}

// vboxGuestFiles are the VirtualBox guest-addition driver files pafish and
// evasive malware probe for.
var vboxGuestFiles = []string{
	`C:\Windows\System32\drivers\VBoxMouse.sys`,
	`C:\Windows\System32\drivers\VBoxGuest.sys`,
	`C:\Windows\System32\drivers\VBoxSF.sys`,
	`C:\Windows\System32\drivers\VBoxVideo.sys`,
}

// NewCuckooSandbox builds a Cuckoo 2.0.3 guest on VirtualBox. With hardened
// set, the paper's transparency modifications are applied: CPUID results
// masked, MAC updated, DMI identity spoofed, and timing made accurate.
// Guest-addition files, registry keys, and service processes remain (the
// modifications do not reinstall the guest).
func NewCuckooSandbox(seed int64, hardened bool) *Machine {
	return NewCuckooSandboxWithUsage(seed, hardened, SandboxUsage())
}

// NewCuckooSandboxWithUsage builds the guest at a specific usage level.
func NewCuckooSandboxWithUsage(seed int64, hardened bool, usage UsageLevel) *Machine {
	profile := ProfileCuckooSandbox
	if hardened {
		profile = ProfileCuckooHardened
	}
	m := NewMachine(string(profile), seed)
	m.Clock = NewClock(45*time.Minute, 2.6)
	m.HW = &Hardware{
		NumCores: 2, RAMBytes: 1 << 30,
		CPUVendor: "GenuineIntel", CPUBrand: "Intel(R) Core(TM) i5-4570 CPU @ 3.20GHz",
		HypervisorPresent: true, HypervisorVendor: "VBoxVBoxVBox",
		CPUIDCycles: cpuidCyclesStockVM, RDTSCCycles: rdtscCycles,
		MACs:       []string{"08:00:27:4f:2a:91"},
		BIOSSerial: "0", SystemManufacturer: "Oracle Corporation", SystemProductName: "VirtualBox",
		ComputerName: "CUCKOO-PC", UserName: "cuckoo",
	}
	if hardened {
		m.HW.HypervisorPresent = false
		m.HW.HypervisorVendor = ""
		m.HW.CPUIDCycles = cpuidCyclesHardened
		m.HW.MACs = []string{"3c:97:0e:aa:bb:cc"}
		m.HW.BIOSSerial = "PF0D4E5F"
		m.HW.SystemManufacturer = "LENOVO"
		m.HW.SystemProductName = "10AB003TUS"
	}
	applyWindowsBase(m)
	setDiskIdentity(m, "VBOX HARDDISK")
	// 100 GB virtual disk: large enough that pafish's <60 GB size check
	// does not fire (the stock guest's generic triggers are mouse, RAM,
	// and the disk identity string; see Table II).
	m.FS.AddVolume(&Volume{Letter: 'C', TotalBytes: 100 << 30, FreeBytes: 74 << 30, SerialNumber: 0x33CC10AF})

	// VirtualBox guest additions: files, registry, services, processes.
	for _, f := range vboxGuestFiles {
		m.FS.Touch(f, 200<<10)
	}
	m.FS.AddDevice(`\\.\VBoxGuest`)
	m.FS.AddDevice(`\\.\VBoxMiniRdrDN`)
	reg := m.Registry
	mustSet(reg, `HKLM\HARDWARE\Description\System`, "SystemBiosVersion", StringValue("VBOX   - 1"))
	mustSet(reg, `HKLM\HARDWARE\Description\System`, "VideoBiosVersion", StringValue("Oracle VM VirtualBox Version 5.1.22 VGA BIOS"))
	mustCreate(reg, `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	mustCreate(reg, `HKLM\SYSTEM\CurrentControlSet\Services\VBoxGuest`)
	mustCreate(reg, `HKLM\SYSTEM\CurrentControlSet\Services\VBoxService`)
	mustCreate(reg, `HKLM\HARDWARE\ACPI\DSDT\VBOX__`)
	mustCreate(reg, `HKLM\SYSTEM\CurrentControlSet\Enum\IDE\DiskVBOX_HARDDISK`)
	for _, img := range []string{
		`C:\Windows\System32\VBoxService.exe`,
		`C:\Windows\System32\VBoxTray.exe`,
	} {
		m.FS.Touch(img, 700<<10)
		p := m.Procs.Create(img, img, 4, 0)
		p.State = ProcessRunning
	}
	// VBoxTray runs headless in the analysis session and owns no window,
	// which is why pafish's window check is the one VirtualBox feature the
	// stock guest does not trigger (16 of 17 in Table II).

	// The Cuckoo agent and its in-guest monitor. The monitor inline-hooks
	// ShellExecuteExW in analyzed processes; pafish's hook check sees the
	// patched prologue (the single Hook trigger without Scarecrow).
	agent := m.Procs.Create(`C:\Python27\pythonw.exe`, `pythonw.exe C:\agent\agent.py`, 4, 0)
	agent.State = ProcessRunning
	m.FS.Touch(`C:\agent\agent.py`, 30<<10)
	m.MonitorHookedAPIs = []string{"ShellExecuteExW"}

	// The Cuckoo result server sinkholes NX domains so samples see "live"
	// network: the standard sandbox behaviour WannaCry's kill switch keys
	// on.
	m.Net.SinkholeIP = "192.168.56.1"

	ApplyUsage(m, usage)
	return m
}

// NewEndUserMachine builds the actively used end-user Windows 7 machine of
// the evaluation, with VMware Workstation installed "due to work
// requirements" (its host-side vmnet adapter carries a VMware MAC prefix —
// the single VMware trigger without Scarecrow).
func NewEndUserMachine(seed int64) *Machine {
	return NewEndUserMachineWithUsage(seed, EndUserUsage())
}

// NewEndUserMachineWithUsage builds the end-user machine at a specific
// usage level.
func NewEndUserMachineWithUsage(seed int64, usage UsageLevel) *Machine {
	m := NewMachine(string(ProfileEndUser), seed)
	m.Clock = NewClock(9*24*time.Hour, 2.6)
	m.HW = &Hardware{
		NumCores: 8, RAMBytes: 16 << 30,
		CPUVendor: "GenuineIntel", CPUBrand: "Intel(R) Core(TM) i7-6700 CPU @ 3.40GHz",
		CPUIDCycles: cpuidCyclesEndUser, RDTSCCycles: rdtscCycles,
		MACs:       []string{"98:e7:43:aa:01:02", "00:50:56:c0:00:08"},
		BIOSSerial: "5CG1234ABC", SystemManufacturer: "Hewlett-Packard", SystemProductName: "HP EliteDesk 800 G2",
		ComputerName: "ALICE-DESKTOP", UserName: "alice",
	}
	applyWindowsBase(m)
	setDiskIdentity(m, "Samsung SSD 850 EVO 500GB")
	m.FS.AddVolume(&Volume{Letter: 'C', TotalBytes: 500 << 30, FreeBytes: 120 << 30, SerialNumber: 0x58A3D901})

	// VMware Workstation (host product, not guest tools).
	m.FS.Touch(`C:\Program Files (x86)\VMware\VMware Workstation\vmware.exe`, 12<<20)
	mustCreate(m.Registry, `HKLM\SOFTWARE\VMware, Inc.\VMware Workstation`)

	ApplyUsage(m, usage)
	return m
}

// NewVirusTotalSandbox models the VirusTotal public sandbox (Cuckoo on
// VirtualBox) with its distinctive analysis tool deployment; the crawler of
// §II-C diffs it against the clean reference.
func NewVirusTotalSandbox(seed int64) *Machine {
	m := NewCuckooSandbox(seed, false)
	m.Profile = string(ProfileVirusTotal)
	m.HW.ComputerName = "VT-SCAN-12"
	m.HW.UserName = "currentuser"
	populatePublicSandbox(m, "vt", 10465, 12, 838)
	return m
}

// NewMalwrSandbox models the Malwr public sandbox, including its
// distinctive 5 GB C: drive the paper calls out.
func NewMalwrSandbox(seed int64) *Machine {
	m := NewCuckooSandbox(seed, false)
	m.Profile = string(ProfileMalwr)
	m.HW.ComputerName = "MALWR-NODE-3"
	m.HW.UserName = "malwr"
	m.FS.AddVolume(&Volume{Letter: 'C', TotalBytes: 5 << 30, FreeBytes: 2 << 30, SerialNumber: 0x0BAD5EED})
	populatePublicSandbox(m, "malwr", 7044, 9, 609)
	return m
}

// populatePublicSandbox provisions the distinctive analysis-tool resources
// of a public sandbox: unique files, running analysis processes, and
// registry entries. The per-sandbox counts are calibrated so the §II-C
// crawl-and-diff yields the paper's totals (17,540 files, 24 processes,
// 1,457 registry entries across both sandboxes).
func populatePublicSandbox(m *Machine, tag string, files, procs, regEntries int) {
	for i := 0; i < files; i++ {
		m.FS.Touch(fmt.Sprintf(`C:\analysis\%s\tools\%s_%05d.bin`, tag, tag, i+1), 4<<10)
	}
	for i := 0; i < procs; i++ {
		img := fmt.Sprintf(`C:\analysis\%s\bin\%s_tool%02d.exe`, tag, tag, i+1)
		m.FS.Touch(img, 1<<20)
		p := m.Procs.Create(img, img, 4, 0)
		p.State = ProcessRunning
	}
	for i := 0; i < regEntries; i++ {
		mustCreate(m.Registry, fmt.Sprintf(`HKLM\SOFTWARE\%sAnalysis\Component%04d`, tag, i+1))
	}
}

package winsim

import "fmt"

// Deterministic fault injection. A real analysis cluster loses machines:
// disks fill, hives corrupt, injection races a crashing target. The lab's
// containment guarantees (one bad run must never kill a corpus sweep) are
// only trustworthy if every recovery path is exercised by tests, so a
// machine can be armed with a FaultPlan that fails the N-th file, registry,
// or process operation — or hook injection — at a seed-independent,
// reproducible point. Faults are a property of one Machine; a fresh machine
// (the Deep Freeze reset) starts clean unless armed again.

// FaultPlan schedules deterministic failures on one machine. Ordinals are
// 1-based and count operations performed after ArmFaults; zero means the
// corresponding class never fails.
type FaultPlan struct {
	// FailFileOp fails the N-th file-system operation with a MachineFault
	// panic (modeling an I/O error surfacing mid-syscall).
	FailFileOp int
	// FailRegOp fails the N-th registry operation the same way.
	FailRegOp int
	// FailProcOp fails the N-th process creation the same way.
	FailProcOp int
	// FailInjection makes hook installation (user and kernel) return an
	// error, modeling a target that crashes or races during DLL injection.
	FailInjection bool
}

// MachineFault is the panic value raised by an armed fault injector when a
// scheduled operation fault fires. Unlike BudgetExceeded it is NOT
// recovered by the scheduler: it unwinds to the lab's per-run containment
// boundary, exactly like an unexpected runtime fault would.
type MachineFault struct {
	// Op names the faulted operation class ("file", "registry", "process").
	Op string
	// N is the 1-based ordinal at which the fault fired.
	N int
}

// Error renders the fault like the I/O error it models.
func (f MachineFault) Error() string {
	return fmt.Sprintf("winsim: injected fault on %s operation %d", f.Op, f.N)
}

// FaultInjector counts operations on one machine and fires the armed plan.
// All methods are nil-receiver safe, so unarmed machines pay only a nil
// check per operation.
type FaultInjector struct {
	plan    FaultPlan
	fileOps int
	regOps  int
	procOps int
}

// fileOp counts one file-system operation, panicking if the plan says so.
func (fi *FaultInjector) fileOp() {
	if fi == nil {
		return
	}
	fi.fileOps++
	if fi.plan.FailFileOp > 0 && fi.fileOps == fi.plan.FailFileOp {
		panic(MachineFault{Op: "file", N: fi.fileOps})
	}
}

// regOp counts one registry operation.
func (fi *FaultInjector) regOp() {
	if fi == nil {
		return
	}
	fi.regOps++
	if fi.plan.FailRegOp > 0 && fi.regOps == fi.plan.FailRegOp {
		panic(MachineFault{Op: "registry", N: fi.regOps})
	}
}

// procOp counts one process creation.
func (fi *FaultInjector) procOp() {
	if fi == nil {
		return
	}
	fi.procOps++
	if fi.plan.FailProcOp > 0 && fi.procOps == fi.plan.FailProcOp {
		panic(MachineFault{Op: "process", N: fi.procOps})
	}
}

// InjectionFault reports whether hook installation should fail.
func (fi *FaultInjector) InjectionFault() bool {
	return fi != nil && fi.plan.FailInjection
}

// ArmFaults installs a fault plan on the machine. Operations performed
// before arming (profile population, agent processes) are not counted, so
// ordinals are stable regardless of how the machine was provisioned.
func (m *Machine) ArmFaults(plan FaultPlan) {
	fi := &FaultInjector{plan: plan}
	m.Faults = fi
	m.FS.faults = fi
	m.Registry.faults = fi
	m.Procs.faults = fi
}

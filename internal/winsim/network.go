package winsim

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Network models the observable network stack: DNS resolution (including
// sinkhole policies), HTTP reachability, and the client-side DNS cache.
//
// The sinkhole policy is central to Case II of the paper: most sandboxes
// resolve non-existent (NX) domains to controlled addresses to elicit
// "live" C2 traffic, and the WannaCry variant's kill-switch logic exits
// when its hard-coded NX domain unexpectedly answers. Scarecrow installs
// the same sinkhole behaviour on end-user machines.
type Network struct {
	// records maps lowercased domain names to addresses for domains that
	// really exist.
	records map[string]string
	// SinkholeIP, when non-empty, is returned for every NX domain lookup,
	// and HTTP requests to it succeed.
	SinkholeIP string
	// reachable is the set of addresses answering HTTP.
	reachable map[string]bool
	// Cache is the client DNS cache (a wear-and-tear artifact).
	Cache *DNSCache
}

// NewNetwork returns a network with no records, no sinkhole, and an empty
// DNS cache.
func NewNetwork() *Network {
	return &Network{
		records:   make(map[string]string),
		reachable: make(map[string]bool),
		Cache:     NewDNSCache(),
	}
}

// AddRecord registers a real domain with its address and marks the address
// HTTP-reachable.
func (n *Network) AddRecord(domain, addr string) {
	n.records[strings.ToLower(domain)] = addr
	n.reachable[addr] = true
}

// MarkReachable makes an address answer HTTP without any DNS record —
// how a locally run proxy (the Scarecrow controller's sinkhole endpoint)
// becomes reachable.
func (n *Network) MarkReachable(addr string) {
	n.reachable[addr] = true
}

// Resolve looks up a domain. Existing domains resolve to their registered
// address. Non-existent domains resolve to the sinkhole address when a
// sinkhole is configured, and fail otherwise. Successful resolutions enter
// the DNS cache.
func (n *Network) Resolve(domain string) (string, bool) {
	d := strings.ToLower(domain)
	if addr, ok := n.records[d]; ok {
		n.Cache.Add(d)
		return addr, true
	}
	if n.SinkholeIP != "" {
		n.Cache.Add(d)
		return n.SinkholeIP, true
	}
	return "", false
}

// Exists reports whether the domain has a real record (ignoring sinkholes).
func (n *Network) Exists(domain string) bool {
	_, ok := n.records[strings.ToLower(domain)]
	return ok
}

// HTTPGet models an HTTP request to an address, reporting whether anything
// answered. Sinkhole addresses always answer, which is exactly the behaviour
// the WannaCry kill switch keys on.
func (n *Network) HTTPGet(addr string) bool {
	if n.SinkholeIP != "" && addr == n.SinkholeIP {
		return true
	}
	return n.reachable[addr]
}

// SyntheticAddr derives a deterministic RFC 5737 documentation address from
// a name, for seeding profiles with plausible record sets.
func SyntheticAddr(name string) string {
	h := fnv.New32a()
	_, _ = h.Write([]byte(strings.ToLower(name)))
	v := h.Sum32()
	return fmt.Sprintf("198.51.%d.%d", (v>>8)%254+1, v%254+1)
}

// DNSCache is the client-side resolver cache whose entry count is one of
// the top-5 wear-and-tear artifacts from Miramirkhani et al. (Table III):
// sandboxes show almost no cached entries while used machines show many.
type DNSCache struct {
	order   []string
	present map[string]struct{}
}

// NewDNSCache returns an empty cache.
func NewDNSCache() *DNSCache {
	return &DNSCache{present: make(map[string]struct{})}
}

// Add inserts a domain if not already cached.
func (c *DNSCache) Add(domain string) {
	d := strings.ToLower(domain)
	if _, ok := c.present[d]; ok {
		return
	}
	c.present[d] = struct{}{}
	c.order = append(c.order, d)
}

// Entries returns the cached domains in insertion order (most recent last).
func (c *DNSCache) Entries() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Len returns the number of cached entries.
func (c *DNSCache) Len() int { return len(c.order) }

// EventLog models the Windows event log at the granularity wear-and-tear
// fingerprinting needs: a total event count and the set of distinct event
// sources. Freshly imaged sandboxes have small logs from few sources.
type EventLog struct {
	count   int
	sources map[string]int
}

// NewEventLog returns an empty event log.
func NewEventLog() *EventLog {
	return &EventLog{sources: make(map[string]int)}
}

// Append records n events from the given source.
func (l *EventLog) Append(source string, n int) {
	if n <= 0 {
		return
	}
	l.count += n
	l.sources[source] += n
}

// Count returns the total number of logged events.
func (l *EventLog) Count() int { return l.count }

// Sources returns the distinct event sources, sorted.
func (l *EventLog) Sources() []string {
	out := make([]string, 0, len(l.sources))
	for s := range l.sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SourceCount returns the number of distinct event sources.
func (l *EventLog) SourceCount() int { return len(l.sources) }

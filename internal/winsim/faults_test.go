package winsim

import (
	"errors"
	"testing"
)

// catchFault runs f and returns the MachineFault it panicked with, if any.
func catchFault(f func()) (fault *MachineFault) {
	defer func() {
		if r := recover(); r != nil {
			mf, ok := r.(MachineFault)
			if !ok {
				panic(r)
			}
			fault = &mf
		}
	}()
	f()
	return nil
}

func TestFaultPlanFileOrdinal(t *testing.T) {
	m := NewMachine("test", 1)
	m.ArmFaults(FaultPlan{FailFileOp: 3})

	// Ordinals count from arming: the first two operations succeed.
	m.FS.Touch(`C:\a.txt`, 1)
	m.FS.Touch(`C:\b.txt`, 1)
	fault := catchFault(func() { m.FS.Exists(`C:\a.txt`) })
	if fault == nil {
		t.Fatal("third file operation did not fault")
	}
	if fault.Op != "file" || fault.N != 3 {
		t.Fatalf("fault = %+v, want Op=file N=3", *fault)
	}
	// The plan is one-shot: operation 4 proceeds normally.
	if !m.FS.Exists(`C:\b.txt`) {
		t.Error("file operations after the faulted ordinal must succeed")
	}
}

func TestFaultPlanRegistryOrdinal(t *testing.T) {
	m := NewMachine("test", 1)
	m.ArmFaults(FaultPlan{FailRegOp: 2})

	if _, err := m.Registry.CreateKey(`HKLM\SOFTWARE\Test`); err != nil {
		t.Fatal(err)
	}
	fault := catchFault(func() { m.Registry.OpenKey(`HKLM\SOFTWARE\Test`) })
	if fault == nil {
		t.Fatal("second registry operation did not fault")
	}
	if fault.Op != "registry" || fault.N != 2 {
		t.Fatalf("fault = %+v, want Op=registry N=2", *fault)
	}
}

func TestFaultPlanProcessOrdinal(t *testing.T) {
	m := NewMachine("test", 1)
	m.ArmFaults(FaultPlan{FailProcOp: 1})

	fault := catchFault(func() { m.Procs.Create(`C:\x.exe`, "x.exe", 4, 0) })
	if fault == nil {
		t.Fatal("first process creation did not fault")
	}
	if fault.Op != "process" || fault.N != 1 {
		t.Fatalf("fault = %+v, want Op=process N=1", *fault)
	}
	if p := m.Procs.Create(`C:\y.exe`, "y.exe", 4, 0); p == nil {
		t.Error("process creation after the faulted ordinal must succeed")
	}
}

func TestMachineFaultIsError(t *testing.T) {
	var err error = MachineFault{Op: "file", N: 7}
	want := "winsim: injected fault on file operation 7"
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
	var mf MachineFault
	if !errors.As(err, &mf) || mf.N != 7 {
		t.Error("MachineFault must be usable as an error value")
	}
}

// An unarmed machine has a nil injector everywhere; every operation class
// must tolerate it.
func TestUnarmedMachineIsFaultFree(t *testing.T) {
	m := NewMachine("test", 1)
	if m.Faults != nil {
		t.Fatal("fresh machine must start unarmed")
	}
	m.FS.Touch(`C:\a.txt`, 1)
	if _, err := m.Registry.CreateKey(`HKLM\SOFTWARE\Test`); err != nil {
		t.Fatal(err)
	}
	m.Procs.Create(`C:\x.exe`, "x.exe", 4, 0)
	if m.Faults.InjectionFault() {
		t.Error("nil injector must report no injection fault")
	}
}

// Profile provisioning happens before arming, so ordinals are independent
// of how richly the profile populated the machine.
func TestArmFaultsCountsFromArming(t *testing.T) {
	for _, profile := range []ProfileName{ProfileBareMetalSandbox, ProfileEndUser} {
		m := NewProfileMachine(profile, 1)
		m.ArmFaults(FaultPlan{FailFileOp: 1})
		fault := catchFault(func() { m.FS.Exists(`C:\Windows`) })
		if fault == nil {
			t.Errorf("%s: first post-arm file operation did not fault", profile)
		}
	}
}

func TestInjectionFault(t *testing.T) {
	m := NewMachine("test", 1)
	m.ArmFaults(FaultPlan{FailInjection: true})
	if !m.Faults.InjectionFault() {
		t.Error("armed injection fault not reported")
	}
	m.ArmFaults(FaultPlan{})
	if m.Faults.InjectionFault() {
		t.Error("re-arming with an empty plan must clear the injection fault")
	}
}

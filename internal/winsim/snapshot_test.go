package winsim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"scarecrow/internal/trace"
)

// TestSnapshotCoversEveryField reflects over every state type the snapshot
// reaches and fails if its field set differs from what snapshotSpec says
// clone() handles — in either direction. Adding a field to the machine
// without snapshot support breaks the build here, not a sweep three PRs
// later.
func TestSnapshotCoversEveryField(t *testing.T) {
	types := map[string]reflect.Type{
		"Machine":       reflect.TypeOf(Machine{}),
		"OSVersion":     reflect.TypeOf(OSVersion{}),
		"Clock":         reflect.TypeOf(Clock{}),
		"Registry":      reflect.TypeOf(Registry{}),
		"Key":           reflect.TypeOf(Key{}),
		"kvPair":        reflect.TypeOf(kvPair{}),
		"Value":         reflect.TypeOf(Value{}),
		"FileSystem":    reflect.TypeOf(FileSystem{}),
		"fsNode":        reflect.TypeOf(fsNode{}),
		"FileInfo":      reflect.TypeOf(FileInfo{}),
		"Volume":        reflect.TypeOf(Volume{}),
		"ProcessTable":  reflect.TypeOf(ProcessTable{}),
		"Process":       reflect.TypeOf(Process{}),
		"PEB":           reflect.TypeOf(PEB{}),
		"WindowManager": reflect.TypeOf(WindowManager{}),
		"Window":        reflect.TypeOf(Window{}),
		"Hardware":      reflect.TypeOf(Hardware{}),
		"Network":       reflect.TypeOf(Network{}),
		"DNSCache":      reflect.TypeOf(DNSCache{}),
		"EventLog":      reflect.TypeOf(EventLog{}),
		"Mouse":         reflect.TypeOf(Mouse{}),
		"FaultInjector": reflect.TypeOf(FaultInjector{}),
		"FaultPlan":     reflect.TypeOf(FaultPlan{}),
		"rngSource":     reflect.TypeOf(rngSource{}),
	}
	for name := range snapshotSpec {
		if _, ok := types[name]; !ok {
			t.Errorf("snapshotSpec names %q but the test has no reflect.Type for it", name)
		}
	}
	for name, typ := range types {
		spec, ok := snapshotSpec[name]
		if !ok {
			t.Errorf("type %s reached by Snapshot but absent from snapshotSpec", name)
			continue
		}
		want := make(map[string]bool, len(spec))
		for _, f := range spec {
			want[f] = true
		}
		var got []string
		for i := 0; i < typ.NumField(); i++ {
			got = append(got, typ.Field(i).Name)
		}
		for _, f := range got {
			if !want[f] {
				t.Errorf("%s.%s is not accounted for in Snapshot/Restore: handle it in clone() and add it to snapshotSpec", name, f)
			}
			delete(want, f)
		}
		var stale []string
		for f := range want {
			stale = append(stale, f)
		}
		sort.Strings(stale)
		if len(stale) > 0 {
			t.Errorf("snapshotSpec lists fields %v for %s that no longer exist", stale, name)
		}
	}
}

// digest renders the complete observable machine state as a string, for
// comparing machines across snapshot/restore/clone boundaries.
func digest(m *Machine) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile=%s os=%d.%d.%d clock=%v uptime=%v deadline=%v quota=%d sleep=%g kdbg=%v hooked=%v\n",
		m.Profile, m.OS.Major, m.OS.Minor, m.OS.Build, m.Clock.Now(), m.Clock.Uptime(),
		m.Clock.Deadline(), m.RegistryQuotaUsed, m.SleepFactor, m.KernelDebuggerPresent, m.MonitorHookedAPIs)
	fmt.Fprintf(&sb, "hw=%+v\n", *m.HW)
	m.FS.Walk(func(info FileInfo) { fmt.Fprintf(&sb, "fs %s kind=%d size=%d\n", info.Path, info.Kind, info.Size) })
	for _, v := range m.FS.Volumes() {
		fmt.Fprintf(&sb, "vol %c total=%d free=%d serial=%d\n", v.Letter, v.TotalBytes, v.FreeBytes, v.SerialNumber)
	}
	m.Registry.Walk(func(path string, k *Key) {
		fmt.Fprintf(&sb, "reg %s", path)
		for _, vn := range k.ValueNames() {
			v, _ := m.Registry.QueryValue(path, vn)
			fmt.Fprintf(&sb, " %s=%d/%q/%d/%v", vn, v.Type, v.Str, v.Num, v.Data)
		}
		sb.WriteByte('\n')
	})
	for _, p := range m.Procs.All() {
		fmt.Fprintf(&sb, "proc %d parent=%d img=%s cmd=%q state=%d exit=%d start=%v end=%v depth=%d prot=%v mods=%v peb=%+v\n",
			p.PID, p.ParentPID, p.Image, p.CommandLine, p.State, p.ExitCode, p.StartTime, p.ExitTime,
			p.SpawnDepth, p.Protected, p.Modules, p.PEB)
	}
	fmt.Fprintf(&sb, "windows=%v classes=%v\n", len(m.Windows.Classes()), m.Windows.Classes())
	fmt.Fprintf(&sb, "eventlog count=%d sources=%v\n", m.EventLog.Count(), m.EventLog.Sources())
	fmt.Fprintf(&sb, "dnscache=%v sinkhole=%q\n", m.Net.Cache.Entries(), m.Net.SinkholeIP)
	for _, e := range m.Tracer.Events() {
		fmt.Fprintf(&sb, "ev %+v\n", e)
	}
	fmt.Fprintf(&sb, "rng=%d\n", m.rngSrc.state)
	return sb.String()
}

// TestSnapshotCloneMatchesFreshBuild: the O(1) reset must be bit-identical
// to the Deep Freeze re-image it replaces, for every profile.
func TestSnapshotCloneMatchesFreshBuild(t *testing.T) {
	for _, name := range []ProfileName{
		ProfileCleanBareMetal, ProfileBareMetalSandbox, ProfileCuckooSandbox,
		ProfileCuckooHardened, ProfileEndUser, ProfileVirusTotal, ProfileMalwr,
	} {
		t.Run(string(name), func(t *testing.T) {
			template := NewProfileMachine(name, 0).Snapshot()
			clone := template.Clone(99)
			fresh := NewProfileMachine(name, 99)
			if digest(clone) != digest(fresh) {
				t.Error("pooled clone diverges from fresh build")
			}
		})
	}
}

// TestSnapshotIsolation: mutations on a clone must never leak into the
// snapshot or into sibling clones, across every subsystem including the
// copy-on-write shared ones.
func TestSnapshotIsolation(t *testing.T) {
	template := NewBareMetalSandbox(1).Snapshot()
	a, b := template.Clone(1), template.Clone(1)

	a.FS.Touch(`C:\leak.txt`, 1)
	if err := a.FS.WriteFile(`C:\Windows\System32\drivers\etc\hosts`, []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	a.FS.Delete(`C:\Windows\System32\cmd.exe`)
	mustSet(a.Registry, `HKLM\SOFTWARE\Leak`, "v", DWordValue(1))
	a.Registry.DeleteKey(`HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	p := a.SpawnProcess(`C:\leak.exe`, "leak", nil)
	a.Procs.All()[0].LoadModule("leak.dll")
	a.Windows.Add(Window{Class: "LeakWnd", PID: p.PID})
	a.Net.AddRecord("leak.example", "203.0.113.7")
	a.Net.Cache.Add("leak.example")
	a.EventLog.Append("Leak", 3)
	a.HW.MACs[0] = "de:ad:be:ef:00:00"
	a.Clock.Advance(time.Second)
	a.Rand().Int63()
	if v := a.FS.VolumeFor(`C:\`); v != nil {
		v.FreeBytes = 1
	}

	if digest(b) != digest(template.Clone(1)) {
		t.Fatal("mutating clone A changed clone B")
	}
	if a.Tracer == b.Tracer {
		t.Fatal("clones share a trace recorder")
	}
}

// TestSnapshotRestoreRewindsState: Restore must rewind every subsystem to
// the snapshot point, including clock, trace stream, and RNG position, so
// subsequent execution replays bit for bit.
func TestSnapshotRestoreRewindsState(t *testing.T) {
	m := NewEndUserMachine(7)
	m.Clock.Advance(3 * time.Second)
	m.Rand().Int63()
	m.SpawnProcess(`C:\pre.exe`, "", nil)
	snap := m.Snapshot()
	want := digest(m)

	// Diverge: heavy mutation after the snapshot point.
	m.Clock.Advance(time.Minute)
	m.Rand().Int63()
	m.FS.Touch(`C:\post.txt`, 9)
	mustSet(m.Registry, `HKLM\SOFTWARE\Post`, "v", StringValue("x"))
	m.ExitProcess(m.Procs.All()[0], 3)
	if digest(m) == want {
		t.Fatal("mutations did not change the digest; test is vacuous")
	}

	m.Restore(snap)
	if digest(m) != want {
		t.Fatal("Restore did not rewind to the snapshot point")
	}

	// Replay: two restores of the same snapshot must execute identically,
	// RNG stream included.
	replay := func(m *Machine) string {
		m.SpawnProcess(fmt.Sprintf(`C:\replay-%d.exe`, m.Rand().Intn(1000)), "", nil)
		m.Sleep(time.Duration(m.Rand().Intn(100)) * time.Millisecond)
		m.FS.Touch(fmt.Sprintf(`C:\r%d.bin`, m.Rand().Intn(1000)), 4)
		return digest(m)
	}
	first := replay(m)
	m2 := NewMachine("other", 0)
	m2.Restore(snap)
	if second := replay(m2); first != second {
		t.Error("execution after Restore diverged between two restored machines")
	}
}

// TestSnapshotRestoresFaultArming: a snapshot taken of an armed machine
// must restore the plan and the operation counters, wired to the restored
// subsystems rather than the originals.
func TestSnapshotRestoresFaultArming(t *testing.T) {
	m := NewBareMetalSandbox(1)
	m.ArmFaults(FaultPlan{FailFileOp: 3})
	m.FS.Touch(`C:\one.txt`, 1) // op 1
	snap := m.Snapshot()

	c := snap.Clone(1)
	c.FS.Exists(`C:\one.txt`) // op 2
	func() {
		defer func() {
			if _, ok := recover().(MachineFault); !ok {
				t.Error("third file op on clone did not fire the restored fault plan")
			}
		}()
		c.FS.Exists(`C:\one.txt`) // op 3: must fault
	}()

	// The original machine still holds its own counter at 1: ops 2 and 3
	// were the clone's. Op 2 and 3 here must fault at 3 as well.
	m.FS.Exists(`C:\one.txt`)
	defer func() {
		if _, ok := recover().(MachineFault); !ok {
			t.Error("original machine lost its fault arming after Snapshot")
		}
	}()
	m.FS.Exists(`C:\one.txt`)
}

// TestClonePropertyQuick is the testing/quick property of the snapshot
// pool: for any seed, two Clone(seed) calls from the same template run a
// fixed workload to identical trace streams and states, and any other seed
// still yields a machine that passes the profile invariants pinned by
// machine_test.go (deterministic counts, distinctive resources).
func TestClonePropertyQuick(t *testing.T) {
	template := NewProfileMachine(ProfileBareMetalSandbox, 0).Snapshot()
	reference := NewProfileMachine(ProfileBareMetalSandbox, 0)

	workload := func(m *Machine) string {
		parent := m.Procs.FindByImage("python.exe")[0]
		p := m.SpawnProcess(`C:\sample.exe`, "sample.exe", parent)
		m.Sleep(time.Duration(m.Rand().Intn(500)) * time.Millisecond)
		m.FS.Touch(fmt.Sprintf(`C:\Users\john\drop%04d.bin`, m.Rand().Intn(10000)), 128)
		mustSet(m.Registry, RegRunKey, fmt.Sprintf("persist%d", m.Rand().Intn(100)), StringValue(p.Image))
		m.ExitProcess(p, m.Rand().Intn(2))
		return digest(m)
	}

	property := func(seed int64) bool {
		a, b := template.Clone(seed), template.Clone(seed)
		if workload(a) != workload(b) {
			t.Logf("seed %d: same-seed clones diverged", seed)
			return false
		}
		// A differently seeded clone is a different machine (RNG stream)
		// but the same profile: all build-time invariants must hold.
		c := template.Clone(seed + 1)
		if c.FS.CountFiles() != reference.FS.CountFiles() ||
			c.Registry.CountKeys() != reference.Registry.CountKeys() ||
			len(c.Procs.All()) != len(reference.Procs.All()) {
			t.Logf("seed %d: clone broke profile determinism invariants", seed)
			return false
		}
		if len(c.Procs.FindByImage("python.exe")) == 0 ||
			!c.FS.Exists(`C:\analysis\fibratus.exe`) ||
			c.HW.ComputerName != "ANALYSIS-07" {
			t.Logf("seed %d: clone lost profile distinctives", seed)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestRecorderCloneIndependent pins the trace-side contract the pool
// depends on: a cloned recorder sees no events recorded on the original
// afterwards, and vice versa.
func TestRecorderCloneIndependent(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(trace.Event{Kind: trace.KindFileCreate, PID: 1})
	c := r.Clone()
	r.Record(trace.Event{Kind: trace.KindFileCreate, PID: 2})
	c.Record(trace.Event{Kind: trace.KindFileCreate, PID: 3})
	if r.Len() != 2 || c.Len() != 2 {
		t.Fatalf("lens = %d, %d, want 2, 2", r.Len(), c.Len())
	}
	if ev := c.Events(); ev[1].PID != 3 {
		t.Errorf("clone events = %+v", ev)
	}
}

package winsim

import (
	"fmt"
	"sort"
	"strings"
)

// ValueType is a registry value type (REG_SZ, REG_DWORD, ...).
type ValueType int

// Registry value types used by the simulation.
const (
	RegSZ ValueType = iota + 1
	RegExpandSZ
	RegDWord
	RegQWord
	RegBinary
	RegMultiSZ
)

// Value is a typed registry value.
type Value struct {
	Type ValueType
	// Str holds string data for RegSZ/RegExpandSZ and the joined form for
	// RegMultiSZ.
	Str string
	// Num holds numeric data for RegDWord/RegQWord.
	Num uint64
	// Data holds raw bytes for RegBinary.
	Data []byte
}

// StringValue builds a REG_SZ value.
func StringValue(s string) Value { return Value{Type: RegSZ, Str: s} }

// DWordValue builds a REG_DWORD value.
func DWordValue(n uint32) Value { return Value{Type: RegDWord, Num: uint64(n)} }

// QWordValue builds a REG_QWORD value.
func QWordValue(n uint64) Value { return Value{Type: RegQWord, Num: n} }

// BinaryValue builds a REG_BINARY value; the slice is copied.
func BinaryValue(b []byte) Value {
	d := make([]byte, len(b))
	copy(d, b)
	return Value{Type: RegBinary, Data: d}
}

// Key is a node in the registry tree. Key and value names are
// case-insensitive, matching Windows semantics; the original casing of the
// first writer is preserved for display.
type Key struct {
	name    string
	subkeys map[string]*Key    // lowercased name -> key
	values  map[string]*kvPair // lowercased name -> pair
}

type kvPair struct {
	name  string
	value Value
}

func newKey(name string) *Key {
	return &Key{
		name:    name,
		subkeys: make(map[string]*Key),
		values:  make(map[string]*kvPair),
	}
}

// Name returns the key's display name.
func (k *Key) Name() string { return k.name }

// SubkeyNames returns the display names of all direct subkeys, sorted
// case-insensitively.
func (k *Key) SubkeyNames() []string {
	out := make([]string, 0, len(k.subkeys))
	for _, sk := range k.subkeys {
		out = append(out, sk.name)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}

// ValueNames returns the display names of all values, sorted
// case-insensitively.
func (k *Key) ValueNames() []string {
	out := make([]string, 0, len(k.values))
	for _, p := range k.values {
		out = append(out, p.name)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}

// SubkeyCount returns the number of direct subkeys.
func (k *Key) SubkeyCount() int { return len(k.subkeys) }

// ValueCount returns the number of values.
func (k *Key) ValueCount() int { return len(k.values) }

// Registry is the machine's hierarchical configuration database. Paths use
// backslash separators and begin with a hive name such as HKEY_LOCAL_MACHINE
// (or its HKLM/HKCU abbreviations); comparisons are case-insensitive.
//
// Clones share the key tree copy-on-write: clone() copies only the hive
// map, and mutators copy the path of keys they touch (path copying, not
// subtree copying) before writing. The owned set tracks which keys this
// registry may mutate in place; everything else is shared with a clone
// and must be copied first.
type Registry struct {
	hives  map[string]*Key // lowercased canonical hive name
	faults *FaultInjector  // nil unless the machine is armed (faults.go)
	owned  map[*Key]bool   // keys safe to mutate in place; nil after clone
}

// Canonical hive names.
const (
	HiveLocalMachine = "HKEY_LOCAL_MACHINE"
	HiveCurrentUser  = "HKEY_CURRENT_USER"
	HiveClassesRoot  = "HKEY_CLASSES_ROOT"
	HiveUsers        = "HKEY_USERS"
)

var hiveAliases = map[string]string{
	"hkey_local_machine": HiveLocalMachine,
	"hklm":               HiveLocalMachine,
	"hkey_current_user":  HiveCurrentUser,
	"hkcu":               HiveCurrentUser,
	"hkey_classes_root":  HiveClassesRoot,
	"hkcr":               HiveClassesRoot,
	"hkey_users":         HiveUsers,
	"hku":                HiveUsers,
}

// NewRegistry returns a registry with the four standard hives and no other
// content.
func NewRegistry() *Registry {
	r := &Registry{hives: make(map[string]*Key), owned: make(map[*Key]bool)}
	for _, h := range []string{HiveLocalMachine, HiveCurrentUser, HiveClassesRoot, HiveUsers} {
		k := newKey(h)
		r.hives[strings.ToLower(h)] = k
		r.owned[k] = true
	}
	return r
}

// ownedCopy returns a mutable shallow copy of k (its maps are copied, its
// children stay shared) registered in the owned set.
func (r *Registry) ownedCopy(k *Key) *Key {
	nk := &Key{
		name:    k.name,
		subkeys: make(map[string]*Key, len(k.subkeys)),
		values:  make(map[string]*kvPair, len(k.values)),
	}
	for n, c := range k.subkeys {
		nk.subkeys[n] = c
	}
	for n, p := range k.values {
		nk.values[n] = p
	}
	r.owned[nk] = true
	return nk
}

// splitHive resolves a registry path into its lowercased canonical hive
// name and the remaining path elements (HKLM by default, like splitPath).
func splitHive(path string) (hive string, parts []string, err error) {
	parts = splitRegPath(path)
	if len(parts) == 0 {
		return "", nil, fmt.Errorf("registry: empty path")
	}
	hive = strings.ToLower(HiveLocalMachine)
	if canonical, ok := hiveAliases[strings.ToLower(parts[0])]; ok {
		hive = strings.ToLower(canonical)
		parts = parts[1:]
	}
	return hive, parts, nil
}

// mutableWalk descends from the hive root along parts, copying every
// shared node on the way down so the caller may mutate the returned key
// in place. With create set, missing keys are created; otherwise the walk
// reports false on the first missing element. It never touches the fault
// injector — public mutators charge their own single registry op.
func (r *Registry) mutableWalk(hive string, parts []string, create bool) (*Key, bool) {
	cur, ok := r.hives[hive]
	if !ok {
		return nil, false
	}
	if r.owned == nil {
		r.owned = make(map[*Key]bool)
	}
	if !r.owned[cur] {
		cur = r.ownedCopy(cur)
		r.hives[hive] = cur
	}
	for _, p := range parts {
		lower := strings.ToLower(p)
		next, ok := cur.subkeys[lower]
		switch {
		case !ok && !create:
			return nil, false
		case !ok:
			next = newKey(p)
			r.owned[next] = true
		case !r.owned[next]:
			next = r.ownedCopy(next)
		}
		cur.subkeys[lower] = next
		cur = next
	}
	return cur, true
}

// splitPath resolves the hive and remaining path elements of a registry
// path. Paths without an explicit hive default to HKEY_LOCAL_MACHINE, which
// matches how the paper (and most evasion write-ups) abbreviates keys such
// as HARDWARE\Description\System.
func (r *Registry) splitPath(path string) (*Key, []string, error) {
	parts := splitRegPath(path)
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("registry: empty path")
	}
	if canonical, ok := hiveAliases[strings.ToLower(parts[0])]; ok {
		return r.hives[strings.ToLower(canonical)], parts[1:], nil
	}
	return r.hives[strings.ToLower(HiveLocalMachine)], parts, nil
}

func splitRegPath(path string) []string {
	raw := strings.Split(strings.Trim(path, `\`), `\`)
	out := raw[:0]
	for _, p := range raw {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// OpenKey returns the key at path, or false if any element is missing.
func (r *Registry) OpenKey(path string) (*Key, bool) {
	r.faults.regOp()
	cur, parts, err := r.splitPath(path)
	if err != nil || cur == nil {
		return nil, false
	}
	for _, p := range parts {
		next, ok := cur.subkeys[strings.ToLower(p)]
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// KeyExists reports whether the key at path exists.
func (r *Registry) KeyExists(path string) bool {
	_, ok := r.OpenKey(path)
	return ok
}

// CreateKey creates the key at path (and any missing ancestors) and returns
// it. Existing keys are returned unchanged (though possibly as fresh
// copy-on-write copies of keys shared with a clone).
func (r *Registry) CreateKey(path string) (*Key, error) {
	r.faults.regOp()
	hive, parts, err := splitHive(path)
	if err != nil {
		return nil, err
	}
	k, ok := r.mutableWalk(hive, parts, true)
	if !ok {
		return nil, fmt.Errorf("registry: unknown hive in %q", path)
	}
	return k, nil
}

// DeleteKey removes the key at path and its entire subtree. It returns
// false if the key does not exist or path names a hive root.
func (r *Registry) DeleteKey(path string) bool {
	r.faults.regOp()
	hive, parts, err := splitHive(path)
	if err != nil || len(parts) == 0 {
		return false
	}
	// Verify existence on the shared tree first, so a failed delete never
	// copies anything.
	cur, ok := r.hives[hive]
	if !ok {
		return false
	}
	for _, p := range parts {
		next, ok := cur.subkeys[strings.ToLower(p)]
		if !ok {
			return false
		}
		cur = next
	}
	parent, ok := r.mutableWalk(hive, parts[:len(parts)-1], false)
	if !ok {
		return false
	}
	delete(parent.subkeys, strings.ToLower(parts[len(parts)-1]))
	return true
}

// QueryValue returns the named value under the key at path. The empty value
// name addresses the key's default value.
func (r *Registry) QueryValue(path, name string) (Value, bool) {
	k, ok := r.OpenKey(path)
	if !ok {
		return Value{}, false
	}
	p, ok := k.values[strings.ToLower(name)]
	if !ok {
		return Value{}, false
	}
	return p.value, true
}

// SetValue creates the key at path if needed and sets the named value.
func (r *Registry) SetValue(path, name string, v Value) error {
	k, err := r.CreateKey(path)
	if err != nil {
		return err
	}
	k.values[strings.ToLower(name)] = &kvPair{name: name, value: v}
	return nil
}

// DeleteValue removes the named value under the key at path, reporting
// whether it existed.
func (r *Registry) DeleteValue(path, name string) bool {
	r.faults.regOp()
	hive, parts, err := splitHive(path)
	if err != nil {
		return false
	}
	// Faultless existence check on the shared tree before any copying.
	cur, ok := r.hives[hive]
	if !ok {
		return false
	}
	for _, p := range parts {
		if cur, ok = cur.subkeys[strings.ToLower(p)]; !ok {
			return false
		}
	}
	lower := strings.ToLower(name)
	if _, ok := cur.values[lower]; !ok {
		return false
	}
	k, ok := r.mutableWalk(hive, parts, false)
	if !ok {
		return false
	}
	delete(k.values, lower)
	return true
}

// Walk visits every key in the registry in a deterministic order, calling
// fn with the full path of each key (including the hive prefix).
func (r *Registry) Walk(fn func(path string, key *Key)) {
	hiveNames := make([]string, 0, len(r.hives))
	for n := range r.hives {
		hiveNames = append(hiveNames, n)
	}
	sort.Strings(hiveNames)
	for _, hn := range hiveNames {
		hive := r.hives[hn]
		walkKey(hive.name, hive, fn)
	}
}

func walkKey(path string, k *Key, fn func(string, *Key)) {
	fn(path, k)
	for _, name := range k.SubkeyNames() {
		sk := k.subkeys[strings.ToLower(name)]
		walkKey(path+`\`+sk.name, sk, fn)
	}
}

// CountKeys returns the total number of keys in the registry, excluding the
// hive roots themselves.
func (r *Registry) CountKeys() int {
	n := 0
	r.Walk(func(path string, _ *Key) {
		if strings.ContainsRune(path, '\\') {
			n++
		}
	})
	return n
}

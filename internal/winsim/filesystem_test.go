package winsim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFileSystemWriteReadDelete(t *testing.T) {
	fs := NewFileSystem()
	if err := fs.WriteFile(`C:\Users\john\doc.txt`, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok := fs.ReadFile(`c:\users\JOHN\DOC.TXT`)
	if !ok || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, ok)
	}
	info, ok := fs.Stat(`C:\Users\john\doc.txt`)
	if !ok || info.Kind != FileRegular || info.Size != 5 {
		t.Fatalf("Stat = %+v, %v", info, ok)
	}
	if !fs.Exists(`C:\Users`) {
		t.Error("parent directory not created")
	}
	if !fs.Delete(`C:\Users\john\doc.txt`) {
		t.Error("Delete failed")
	}
	if fs.Exists(`C:\Users\john\doc.txt`) {
		t.Error("file survived delete")
	}
}

func TestFileSystemDeviceObjects(t *testing.T) {
	fs := NewFileSystem()
	fs.AddDevice(`\\.\VBoxGuest`)
	info, ok := fs.Stat(`\\.\vboxguest`)
	if !ok || info.Kind != FileDevice {
		t.Fatalf("device Stat = %+v, %v", info, ok)
	}
	if err := fs.WriteFile(`\\.\VBoxGuest`, []byte("x")); err == nil {
		t.Error("writing a device should fail")
	}
}

func TestFileSystemDirectoryDeleteRemovesSubtree(t *testing.T) {
	fs := NewFileSystem()
	fs.Touch(`C:\tools\a\one.bin`, 1)
	fs.Touch(`C:\tools\a\two.bin`, 1)
	fs.Touch(`C:\tools\b.bin`, 1)
	if !fs.Delete(`C:\tools\a`) {
		t.Fatal("Delete dir failed")
	}
	if fs.Exists(`C:\tools\a\one.bin`) {
		t.Error("subtree file survived")
	}
	if !fs.Exists(`C:\tools\b.bin`) {
		t.Error("sibling removed")
	}
}

func TestFileSystemList(t *testing.T) {
	fs := NewFileSystem()
	fs.Touch(`C:\dir\b.txt`, 1)
	fs.Touch(`C:\dir\A.txt`, 1)
	fs.Touch(`C:\dir\sub\c.txt`, 1)
	got := fs.List(`C:\dir`)
	if len(got) != 3 { // A.txt, b.txt, sub
		t.Fatalf("List = %v", got)
	}
	if got[0] != `C:\dir\A.txt` {
		t.Errorf("sort order: %v", got)
	}
}

func TestFileSystemVolumes(t *testing.T) {
	fs := NewFileSystem()
	fs.AddVolume(&Volume{Letter: 'C', TotalBytes: 5 << 30, FreeBytes: 2 << 30})
	v := fs.VolumeFor(`c:\sample.exe`)
	if v == nil || v.TotalBytes != 5<<30 {
		t.Fatalf("VolumeFor = %+v", v)
	}
	if fs.VolumeFor(`\\.\PhysicalDrive0`) != nil {
		t.Error("device paths have no volume")
	}
	if fs.VolumeFor(`D:\x`) != nil {
		t.Error("unknown drive should have no volume")
	}
	free := v.FreeBytes
	if err := fs.WriteFile(`C:\big.bin`, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if v.FreeBytes != free-4096 {
		t.Errorf("free space not charged: %d -> %d", free, v.FreeBytes)
	}
}

func TestFileSystemCountFiles(t *testing.T) {
	fs := NewFileSystem()
	base := fs.CountFiles()
	for i := 0; i < 10; i++ {
		fs.Touch(fmt.Sprintf(`C:\f\%d.bin`, i), 1)
	}
	fs.AddDevice(`\\.\Dev0`)
	if got := fs.CountFiles(); got != base+11 {
		t.Errorf("CountFiles = %d, want %d", got, base+11)
	}
}

func TestNormalizePath(t *testing.T) {
	tests := []struct{ in, want string }{
		{`C:\Windows\System32`, `c:\windows\system32`},
		{`C:/Windows/System32/`, `c:\windows\system32`},
		{`C:`, `c:\`},
		{`C:\`, `c:\`},
		{`\\.\VBoxGuest`, `\\.\vboxguest`},
	}
	for _, tt := range tests {
		if got := NormalizePath(tt.in); got != tt.want {
			t.Errorf("NormalizePath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// Property: touching any generated path makes Exists true for upper and
// lower case variants.
func TestFileSystemCaseInsensitivityProperty(t *testing.T) {
	f := func(n uint16) bool {
		fs := NewFileSystem()
		p := fmt.Sprintf(`C:\Dir%d\File%d.Bin`, n%97, n)
		fs.Touch(p, 1)
		return fs.Exists(p) && fs.Exists(NormalizePath(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

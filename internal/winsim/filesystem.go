package winsim

import (
	"fmt"
	"sort"
	"strings"
)

// FileKind distinguishes regular files, directories, and device objects
// (e.g. \\.\VBoxGuest), which evasive malware opens to probe for VM guest
// drivers.
type FileKind int

// File kinds.
const (
	FileRegular FileKind = iota + 1
	FileDirectory
	FileDevice
)

// FileInfo describes a file system node.
type FileInfo struct {
	Path string // display path as first created
	Kind FileKind
	Size int64
}

// fsNode is immutable once installed in the node map: every operation that
// changes a file (WriteFile, Touch, AddDevice) installs a NEW node rather
// than mutating the existing one. The snapshot subsystem (snapshot.go)
// relies on this to share nodes copy-on-write across cloned machines — if
// you add an in-place mutation, deep-copy nodes in FileSystem.clone first.
type fsNode struct {
	info FileInfo
	data []byte
}

// Volume models one drive letter's capacity accounting. Sandboxes are
// frequently provisioned with implausibly small disks (the paper cites the
// 5 GB C: drive of the Malwr public sandbox), so total and free bytes are
// first-class observables.
type Volume struct {
	Letter     byte // e.g. 'C'
	TotalBytes uint64
	FreeBytes  uint64
	// SerialNumber is the volume serial returned by GetVolumeInformation.
	SerialNumber uint32
}

// FileSystem is the machine's virtual file store. Paths use backslash
// separators, are case-insensitive, and may name devices with the \\.\
// prefix.
//
// Clones share the node map copy-on-write: clone() hands the same map to
// both sides and marks them shared; the first mutation on either side
// copies the map (nodes themselves are immutable once installed, so the
// copy is shallow).
type FileSystem struct {
	nodes   map[string]*fsNode // normalized path -> node
	volumes map[byte]*Volume
	faults  *FaultInjector // nil unless the machine is armed (faults.go)
	shared  bool           // nodes map is shared with a clone; copy before writing
}

// ownNodes makes the node map private to this file system, copying it if
// a clone still shares it. Every mutator calls it before writing.
func (fs *FileSystem) ownNodes() {
	if !fs.shared {
		return
	}
	nodes := make(map[string]*fsNode, len(fs.nodes))
	for k, n := range fs.nodes {
		nodes[k] = n
	}
	fs.nodes = nodes
	fs.shared = false
}

// NewFileSystem returns a file system containing only a C: volume root.
func NewFileSystem() *FileSystem {
	fs := &FileSystem{
		nodes:   make(map[string]*fsNode),
		volumes: make(map[byte]*Volume),
	}
	fs.AddVolume(&Volume{Letter: 'C', TotalBytes: 500 << 30, FreeBytes: 350 << 30, SerialNumber: 0x1CE5C41E})
	fs.MkdirAll(`C:\`)
	return fs
}

// NormalizePath lowercases a path and collapses forward slashes to
// backslashes, producing the key used for case-insensitive lookups.
// Lowercasing happens first: it can change byte length on non-UTF-8 input,
// and the structural rules below must see the final bytes for the
// function to stay idempotent.
func NormalizePath(p string) string {
	p = strings.ToLower(strings.ReplaceAll(p, "/", `\`))
	p = strings.TrimRight(p, `\`)
	if p == "" {
		p = `\`
	}
	// Preserve the root form "c:\" rather than "c:".
	if len(p) == 2 && p[1] == ':' {
		p += `\`
	}
	return p
}

// AddVolume registers or replaces a volume.
func (fs *FileSystem) AddVolume(v *Volume) {
	fs.volumes[upperByte(v.Letter)] = v
}

// VolumeFor returns the volume owning the given path, or nil for device
// paths and unknown drive letters.
func (fs *FileSystem) VolumeFor(path string) *Volume {
	if strings.HasPrefix(path, `\\.\`) || len(path) < 2 || path[1] != ':' {
		return nil
	}
	return fs.volumes[upperByte(path[0])]
}

// Volumes returns all volumes sorted by drive letter.
func (fs *FileSystem) Volumes() []*Volume {
	out := make([]*Volume, 0, len(fs.volumes))
	for _, v := range fs.volumes {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Letter < out[j].Letter })
	return out
}

func upperByte(b byte) byte {
	if b >= 'a' && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// MkdirAll creates the directory at path and any missing ancestors.
func (fs *FileSystem) MkdirAll(path string) {
	fs.ownNodes()
	norm := NormalizePath(path)
	parts := strings.Split(norm, `\`)
	display := strings.Split(strings.ReplaceAll(strings.TrimRight(path, `\/`), "/", `\`), `\`)
	cur := ""
	for i, p := range parts {
		if p == "" {
			continue
		}
		if cur == "" {
			cur = p
		} else {
			cur = cur + `\` + p
		}
		if _, ok := fs.nodes[cur]; ok {
			continue
		}
		disp := cur
		if i < len(display) {
			disp = strings.Join(display[:i+1], `\`)
		}
		fs.nodes[cur] = &fsNode{info: FileInfo{Path: disp, Kind: FileDirectory}}
	}
}

// WriteFile creates or replaces a regular file with the given contents,
// creating parent directories as needed and charging the volume's free
// space.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	fs.faults.fileOp()
	fs.ownNodes()
	if strings.HasPrefix(path, `\\.\`) {
		return fmt.Errorf("filesystem: cannot write device %q", path)
	}
	if dir := parentDir(path); dir != "" {
		fs.MkdirAll(dir)
	}
	norm := NormalizePath(path)
	if n, ok := fs.nodes[norm]; ok && n.info.Kind == FileDirectory {
		return fmt.Errorf("filesystem: %q is a directory", path)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	fs.nodes[norm] = &fsNode{
		info: FileInfo{Path: path, Kind: FileRegular, Size: int64(len(data))},
		data: buf,
	}
	if v := fs.VolumeFor(path); v != nil && v.FreeBytes > uint64(len(data)) {
		v.FreeBytes -= uint64(len(data))
	}
	return nil
}

// Touch creates an empty regular file at path (parents included) with a
// declared size but no stored contents; used to provision large deceptive
// file trees cheaply.
func (fs *FileSystem) Touch(path string, size int64) {
	fs.faults.fileOp()
	fs.ownNodes()
	if dir := parentDir(path); dir != "" {
		fs.MkdirAll(dir)
	}
	fs.nodes[NormalizePath(path)] = &fsNode{
		info: FileInfo{Path: path, Kind: FileRegular, Size: size},
	}
}

// AddDevice registers a device object such as \\.\VBoxGuest.
func (fs *FileSystem) AddDevice(path string) {
	fs.ownNodes()
	fs.nodes[NormalizePath(path)] = &fsNode{
		info: FileInfo{Path: path, Kind: FileDevice},
	}
}

// ReadFile returns the stored contents of a regular file.
func (fs *FileSystem) ReadFile(path string) ([]byte, bool) {
	fs.faults.fileOp()
	n, ok := fs.nodes[NormalizePath(path)]
	if !ok || n.info.Kind != FileRegular {
		return nil, false
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, true
}

// Stat returns metadata for the node at path.
func (fs *FileSystem) Stat(path string) (FileInfo, bool) {
	fs.faults.fileOp()
	n, ok := fs.nodes[NormalizePath(path)]
	if !ok {
		return FileInfo{}, false
	}
	return n.info, true
}

// Exists reports whether any node exists at path.
func (fs *FileSystem) Exists(path string) bool {
	fs.faults.fileOp()
	_, ok := fs.nodes[NormalizePath(path)]
	return ok
}

// Delete removes the node at path, reporting whether it existed. Deleting a
// directory removes its entire subtree.
func (fs *FileSystem) Delete(path string) bool {
	fs.faults.fileOp()
	norm := NormalizePath(path)
	n, ok := fs.nodes[norm]
	if !ok {
		return false
	}
	fs.ownNodes()
	delete(fs.nodes, norm)
	if n.info.Kind == FileDirectory {
		prefix := norm + `\`
		for k := range fs.nodes {
			if strings.HasPrefix(k, prefix) {
				delete(fs.nodes, k)
			}
		}
	}
	return true
}

// List returns the display paths of the direct children of the directory at
// path, sorted.
func (fs *FileSystem) List(path string) []string {
	fs.faults.fileOp()
	prefix := NormalizePath(path)
	if !strings.HasSuffix(prefix, `\`) {
		prefix += `\`
	}
	var out []string
	for k, n := range fs.nodes {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		rest := k[len(prefix):]
		if rest == "" || strings.ContainsRune(rest, '\\') {
			continue
		}
		out = append(out, n.info.Path)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.ToLower(out[i]) < strings.ToLower(out[j])
	})
	return out
}

// Walk visits every node in normalized-path order.
func (fs *FileSystem) Walk(fn func(info FileInfo)) {
	keys := make([]string, 0, len(fs.nodes))
	for k := range fs.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(fs.nodes[k].info)
	}
}

// CountFiles returns the number of regular files and devices (directories
// excluded), matching how the paper counts "files" collected by its
// public-sandbox crawler.
func (fs *FileSystem) CountFiles() int {
	n := 0
	for _, node := range fs.nodes {
		if node.info.Kind != FileDirectory {
			n++
		}
	}
	return n
}

func parentDir(path string) string {
	p := strings.ReplaceAll(path, "/", `\`)
	i := strings.LastIndexByte(p, '\\')
	if i <= 0 {
		return ""
	}
	return p[:i]
}

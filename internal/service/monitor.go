package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/deter"
	"scarecrow/internal/winsim"
)

// The streaming deterrence endpoint: POST /v1/monitor runs the specimen
// ONCE on an unprotected machine under the real-time deterrence tier
// (internal/deter) and streams Server-Sent Events as the run unfolds —
// one `detection` event per signal the online detector fires, then a
// final `verdict` event carrying the full analysis.MonitorDoc.
//
// Monitored runs deliberately bypass the verdict cache, the coalescer,
// and the durable store: the stream's value is watching the detection
// happen, and a replayed byte-identical stream would misrepresent a
// cached result as a live run. The response advertises the bypass via
// X-Scarecrow-Cache: bypass. Determinism still holds — the same
// (specimen, profile, seed, action) streams the same events — it is the
// serving layers that step aside, not the simulation.

// MonitorRequest is the body of POST /v1/monitor: a normal submission
// plus the enforcement action.
type MonitorRequest struct {
	SubmitRequest
	// Action is the enforcement applied when the detector flags the
	// payload: kill (default), throttle, isolate, or observe.
	Action string `json:"action,omitempty"`
}

// monitorLabs is the monitored-run lab pool. Monitor handlers run on
// request goroutines (not the worker pool), so they check labs out of
// this pool to keep the single-owner lab contract: a lab is used by one
// goroutine at a time and returned when the run completes, preserving
// its template snapshot across runs.
type monitorLabs struct {
	mu   sync.Mutex
	labs map[winsim.ProfileName][]*analysis.Lab
}

func (p *monitorLabs) get(profile winsim.ProfileName) *analysis.Lab {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.labs == nil {
		p.labs = make(map[winsim.ProfileName][]*analysis.Lab)
	}
	if pool := p.labs[profile]; len(pool) > 0 {
		lab := pool[len(pool)-1]
		p.labs[profile] = pool[:len(pool)-1]
		return lab
	}
	return &analysis.Lab{
		Profile: profile,
		Config:  core.RecommendedConfig(string(profile)),
	}
}

func (p *monitorLabs) put(lab *analysis.Lab) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.labs[lab.Profile] = append(p.labs[lab.Profile], lab)
}

// writeSSE emits one Server-Sent Event frame.
func writeSSE(w http.ResponseWriter, id int, event string, data []byte) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
}

// handleMonitor serves POST /v1/monitor. Concurrency is bounded by the
// monitor semaphore (worker-count wide) so streaming runs cannot
// outnumber the verdict workers; a saturated tier answers 429 +
// Retry-After just like a full queue.
func (s *Server) handleMonitor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req MonitorRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return
	}
	action, err := deter.ParseAction(req.Action)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	res, err := s.resolve(req.SubmitRequest)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: ErrDraining.Error()})
		return
	}
	select {
	case s.monitorSem <- struct{}{}:
		defer func() { <-s.monitorSem }()
	default:
		s.mu.Lock()
		s.monitorRejected++
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(req.SubmitRequest)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "monitor capacity exhausted"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported by this connection"})
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Scarecrow-Cache", "bypass")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	lab := s.monitorLabs.get(res.profile)
	defer s.monitorLabs.put(lab)

	// The simulation runs on this goroutine; OnDetection fires inside it,
	// so frames stream in event order with no buffering or races. A
	// disconnected client turns writes into errors we ignore — the run
	// completes regardless, exactly like the synchronous verdict path.
	frames := 0
	result := lab.RunMonitoredSeeded(res.specimen, res.seed, analysis.MonitorOptions{
		Action: action,
		OnDetection: func(d deter.Detection) {
			frames++
			if b, err := json.Marshal(d); err == nil {
				writeSSE(w, frames, "detection", b)
				flusher.Flush()
			}
		},
	})

	doc, err := result.Doc().Marshal()
	if err != nil {
		doc = []byte(fmt.Sprintf(`{"specimen":%q,"category":"error","error":%q}`, res.specimen.ID, err.Error()))
	}
	frames++
	writeSSE(w, frames, "verdict", doc)
	flusher.Flush()

	s.mu.Lock()
	s.monitorRuns++
	if result.Outcome.Deterred {
		s.monitorDeterred++
	}
	if result.Err != nil {
		s.verdictErrors++
	}
	s.virtual += result.VirtualTime
	s.mu.Unlock()
}

package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"scarecrow/internal/analysis"
	"scarecrow/internal/synth"
)

// A synthesized predicate runs end to end, caches on its canonical
// fingerprint, and coalesces with a differently formatted encoding of
// the same tree.
func TestPredicateVerdict(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16})
	s.Start()
	defer shutdown(t, s)

	tree := &synth.Node{Op: synth.OpAnd, Kids: []*synth.Node{
		{Op: synth.OpLeaf, Entry: "file:deepfreeze"},
		{Op: synth.OpLeaf, Entry: "wt:dns-cache"},
	}}
	raw, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{Predicate: raw, Seed: seedPtr(5)}
	j1 := mustSubmit(t, s, req)
	waitDone(t, j1)
	var doc analysis.VerdictDoc
	if err := json.Unmarshal(j1.Verdict(), &doc); err != nil {
		t.Fatalf("predicate verdict invalid: %v", err)
	}
	if doc.Category == analysis.VerdictError.String() {
		t.Fatalf("predicate run errored: %s", doc.Error)
	}
	if !strings.HasPrefix(doc.Specimen, "syn_") {
		t.Errorf("predicate specimen ID = %q, want syn_-prefixed", doc.Specimen)
	}

	// The same tree with different JSON formatting is the same job:
	// the cache keys on the canonical fingerprint, not the bytes.
	spaced := []byte(`{ "op": "and", "kids": [ {"op":"leaf","entry":"file:deepfreeze"}, {"op":"leaf","entry":"wt:dns-cache"} ] }`)
	j2 := mustSubmit(t, s, SubmitRequest{Predicate: spaced, Seed: seedPtr(5)})
	if !j2.CacheHit() {
		t.Fatalf("reformatted predicate was not a cache hit")
	}
	if !bytes.Equal(j1.Verdict(), j2.Verdict()) {
		t.Fatalf("predicate replay bytes differ")
	}
}

// Malformed predicates are client errors, not worker crashes.
func TestPredicateValidation(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16})
	s.Start()
	defer shutdown(t, s)

	for name, raw := range map[string]string{
		"bad-json":      `{`,
		"unknown-entry": `{"op":"leaf","entry":"no:such"}`,
		"bad-arity":     `{"op":"and","kids":[{"op":"leaf","entry":"file:deepfreeze"}]}`,
		"with-specimen": ``, // specimen+predicate set together, below
	} {
		req := SubmitRequest{Predicate: json.RawMessage(raw)}
		if name == "with-specimen" {
			req = SubmitRequest{
				Specimen:  "wannacry",
				Predicate: json.RawMessage(`{"op":"leaf","entry":"file:deepfreeze"}`),
			}
		}
		if _, err := s.Submit(req); err == nil {
			t.Errorf("%s: submit accepted an invalid predicate request", name)
		}
	}
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/evasion"
	"scarecrow/internal/malware"
	"scarecrow/internal/winapi"
)

func seedPtr(v int64) *int64 { return &v }

func catalogRequest(seed int64) SubmitRequest {
	return SubmitRequest{Specimen: "kasidet", Seed: seedPtr(seed)}
}

func mustSubmit(t *testing.T, s *Server, req SubmitRequest) *Job {
	t.Helper()
	job, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", req, err)
	}
	return job
}

func waitDone(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not complete", job.ID)
	}
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// Acceptance (a): identical (specimen, profile, seed) submissions return
// byte-identical verdict JSON with exactly one lab run — the first pair
// coalesces onto one job, the post-completion replay is a cache hit.
func TestCoalescingAndCacheOneLabRun(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16})
	req := catalogRequest(7)

	// Submissions land before Start so both are in flight together —
	// deterministic coalescing, no timing dependence.
	j1 := mustSubmit(t, s, req)
	j2 := mustSubmit(t, s, req)
	if j1 != j2 {
		t.Fatalf("identical in-flight submissions got distinct jobs %s and %s", j1.ID, j2.ID)
	}

	s.Start()
	defer shutdown(t, s)
	waitDone(t, j1)

	if st := s.Snapshot(); st.LabRuns != 1 {
		t.Fatalf("LabRuns = %d, want exactly 1 (coalescing failed)", st.LabRuns)
	}
	if st := s.Snapshot(); st.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", st.Coalesced)
	}

	// Replay after completion: served from cache, no second run, and the
	// bytes are identical — determinism makes the cached verdict exact.
	j3 := mustSubmit(t, s, req)
	if !j3.CacheHit() {
		t.Fatalf("post-completion replay was not a cache hit")
	}
	if j3.State() != JobDone {
		t.Fatalf("cache-hit job state = %s, want done", j3.State())
	}
	if !bytes.Equal(j1.Verdict(), j3.Verdict()) {
		t.Fatalf("cached verdict differs from computed verdict:\n%s\nvs\n%s", j1.Verdict(), j3.Verdict())
	}
	if st := s.Snapshot(); st.LabRuns != 1 {
		t.Fatalf("LabRuns = %d after cache hit, want still 1", st.LabRuns)
	}

	// The verdict is well-formed and names the specimen.
	var doc analysis.VerdictDoc
	if err := json.Unmarshal(j1.Verdict(), &doc); err != nil {
		t.Fatalf("verdict is not valid JSON: %v", err)
	}
	if doc.Family != "Kasidet" {
		t.Errorf("verdict family = %q, want Kasidet", doc.Family)
	}
	if doc.Category == analysis.VerdictError.String() {
		t.Errorf("run errored: %s", doc.Error)
	}
}

// A different seed is a different key: no coalescing, two runs.
func TestDistinctSeedsDoNotCoalesce(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 8, CacheSize: 16})
	j1 := mustSubmit(t, s, catalogRequest(1))
	j2 := mustSubmit(t, s, catalogRequest(2))
	if j1 == j2 {
		t.Fatalf("distinct seeds coalesced onto one job")
	}
	s.Start()
	defer shutdown(t, s)
	waitDone(t, j1)
	waitDone(t, j2)
	if st := s.Snapshot(); st.LabRuns != 2 {
		t.Fatalf("LabRuns = %d, want 2", st.LabRuns)
	}
}

// Acceptance (b): a full queue refuses immediately with ErrQueueFull — the
// submission path never blocks — and the HTTP layer turns that into 429
// with Retry-After.
func TestQueueFullRejects(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 1, CacheSize: 16})
	// Workers not started: the single queue slot fills and stays full.
	mustSubmit(t, s, catalogRequest(1))

	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(catalogRequest(2))
		done <- err
	}()
	select {
	case err := <-done:
		if err != ErrQueueFull {
			t.Fatalf("Submit on full queue: got %v, want ErrQueueFull", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("Submit blocked on a full queue instead of rejecting")
	}

	// The HTTP layer: 429 + Retry-After, and the listener stays live.
	body, _ := json.Marshal(catalogRequest(3))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/submit", bytes.NewReader(body)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit: status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("429 response missing Retry-After header")
	}

	// Reads still served while the queue is jammed.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz during backpressure: status %d, want 200", rec.Code)
	}

	s.Start()
	shutdown(t, s)
	if st := s.Snapshot(); st.Rejected < 2 {
		t.Errorf("Rejected = %d, want >= 2", st.Rejected)
	}
}

// panicResolver extends the catalog with a specimen whose payload panics —
// no evasive checks, so the payload (and the panic) always runs. The panic
// escapes the cooperative scheduler (runOne rethrows unsanctioned panics)
// and must be absorbed by the lab's containment boundary.
func panicResolver(req SubmitRequest) (*malware.Specimen, string, error) {
	if req.Specimen != "panic-bomb" {
		return nil, "", nil // not ours: fall through to the built-in resolver
	}
	return &malware.Specimen{
		ID:      "PanicBomb",
		Family:  "Test",
		Source:  "test",
		Image:   malware.ImagePath("panicbomb"),
		Checks:  []evasion.Check{},
		React:   malware.ReactTerminate(),
		Payload: func(ctx *winapi.Context) int { panic("payload detonated") },
	}, "test:panic-bomb", nil
}

// Acceptance (c): a panic inside a run is contained — the job completes
// with a VerdictError document and the worker keeps serving later jobs.
func TestWorkerPanicContained(t *testing.T) {
	s := NewServer(Config{
		Workers:    1,
		QueueDepth: 8,
		CacheSize:  16,
		Resolver:   panicResolver,
	})
	s.Start()
	defer shutdown(t, s)

	bomb := mustSubmit(t, s, SubmitRequest{Specimen: "panic-bomb"})
	waitDone(t, bomb)

	var doc analysis.VerdictDoc
	if err := json.Unmarshal(bomb.Verdict(), &doc); err != nil {
		t.Fatalf("panic verdict is not valid JSON: %v", err)
	}
	if doc.Category != analysis.VerdictError.String() {
		t.Fatalf("panic run category = %q, want error", doc.Category)
	}
	if doc.Error == "" || doc.RecoveredPanics == 0 {
		t.Fatalf("panic run should record the error and the recovered panic, got %+v", doc)
	}

	// Error results are not cached: a retry runs again.
	retry := mustSubmit(t, s, SubmitRequest{Specimen: "panic-bomb"})
	if retry.CacheHit() {
		t.Fatalf("errored verdict was served from cache")
	}
	waitDone(t, retry)

	// The same worker serves a healthy job afterwards.
	ok := mustSubmit(t, s, catalogRequest(11))
	waitDone(t, ok)
	if err := json.Unmarshal(ok.Verdict(), &doc); err != nil {
		t.Fatalf("post-panic verdict invalid: %v", err)
	}
	if doc.Category == analysis.VerdictError.String() {
		t.Fatalf("worker poisoned: healthy job after panic errored: %s", doc.Error)
	}
	if st := s.Snapshot(); st.Report.RecoveredPanics < 2 {
		t.Errorf("RecoveredPanics = %d, want >= 2", st.Report.RecoveredPanics)
	}
}

// Acceptance (d): Shutdown refuses new work immediately but drains every
// queued and running job before returning.
func TestGracefulShutdownDrains(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 16, CacheSize: 16})
	jobs := make([]*Job, 0, 6)
	for seed := int64(1); seed <= 6; seed++ {
		jobs = append(jobs, mustSubmit(t, s, catalogRequest(seed)))
	}
	s.Start()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}

	for _, job := range jobs {
		if job.State() != JobDone {
			t.Errorf("job %s state after drain = %s, want done", job.ID, job.State())
		}
		if job.Verdict() == nil {
			t.Errorf("job %s has no verdict after drain", job.ID)
		}
	}
	if _, err := s.Submit(catalogRequest(99)); err != ErrDraining {
		t.Errorf("Submit after Shutdown: got %v, want ErrDraining", err)
	}
	// Second Shutdown is a no-op, not a panic.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("repeated Shutdown: %v", err)
	}
}

// The full HTTP round trip: synchronous verdict, async submit + poll,
// statusz and metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s := NewServer(Config{Workers: 2, QueueDepth: 16, CacheSize: 16})
	s.Start()
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Synchronous verdict.
	body, _ := json.Marshal(SubmitRequest{Specimen: "wannacry", Seed: seedPtr(3)})
	resp, err := http.Post(ts.URL+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/verdict: %v", err)
	}
	verdict1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/verdict: status %d, body %s", resp.StatusCode, verdict1)
	}
	var doc analysis.VerdictDoc
	if err := json.Unmarshal(verdict1, &doc); err != nil {
		t.Fatalf("verdict body invalid: %v", err)
	}
	if doc.Specimen == "" {
		t.Fatalf("verdict has no specimen: %s", verdict1)
	}

	// Replay: the cache serves byte-identical bytes and marks the hit.
	resp, err = http.Post(ts.URL+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/verdict (replay): %v", err)
	}
	verdict2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Errorf("replay missing X-Scarecrow-Cache: hit header")
	}
	if !bytes.Equal(verdict1, verdict2) {
		t.Fatalf("replayed verdict differs:\n%s\nvs\n%s", verdict1, verdict2)
	}

	// Async: submit, wait on the job's completion channel, then read the
	// result once. Blocking on Done instead of polling GET keeps the test
	// wall-clock-free: it proceeds the instant the worker publishes.
	body, _ = json.Marshal(SubmitRequest{Specimen: "locky", Seed: seedPtr(4)})
	resp, err = http.Post(ts.URL+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/submit: %v", err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: status %d, response %+v", resp.StatusCode, sub)
	}
	job, ok := s.Lookup(sub.ID)
	if !ok {
		t.Fatalf("submitted job %s not in the registry", sub.ID)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s still %s at deadline", sub.ID, job.State())
	}
	var res resultResponse
	resp, err = http.Get(ts.URL + sub.Result)
	if err != nil {
		t.Fatalf("GET %s: %v", sub.Result, err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	resp.Body.Close()
	if res.State != JobDone {
		t.Fatalf("job %s state = %s after Done, want done", sub.ID, res.State)
	}
	if len(res.Verdict) == 0 {
		t.Fatalf("done job has empty verdict")
	}

	// Unknown job is a 404.
	resp, err = http.Get(ts.URL + "/v1/result/j99999999")
	if err != nil {
		t.Fatalf("GET unknown job: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// Bad requests are 400s.
	for _, bad := range []string{
		`{"specimen":"nope"}`,
		`{"specimen":"wannacry","profile":"not-a-profile"}`,
		`{}`,
		`{"specimen":"wannacry","recipe":{"checks":["debugger-api"]}}`,
		`not json`,
	} {
		resp, err = http.Post(ts.URL+"/v1/verdict", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatalf("POST bad request: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// statusz reflects the session.
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatalf("GET /statusz: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding statusz: %v", err)
	}
	resp.Body.Close()
	if st.LabRuns < 2 || st.CacheHits < 1 {
		t.Errorf("statusz: LabRuns=%d CacheHits=%d, want >=2 and >=1", st.LabRuns, st.CacheHits)
	}

	// metrics is valid expvar-style JSON with the counters present.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var metrics map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	resp.Body.Close()
	for _, key := range []string{"submitted", "completed", "lab_runs", "cache_hits", "cache_hit_rate"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, metrics)
		}
	}
}

// A recipe specimen runs end to end and caches on its canonical form.
func TestRecipeVerdict(t *testing.T) {
	s := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16})
	s.Start()
	defer shutdown(t, s)

	req := SubmitRequest{
		Recipe: &Recipe{
			Checks:  []string{"debugger-api", "vbox-registry"},
			React:   "terminate",
			Payload: "ransomware",
		},
		Seed: seedPtr(5),
	}
	j1 := mustSubmit(t, s, req)
	waitDone(t, j1)
	var doc analysis.VerdictDoc
	if err := json.Unmarshal(j1.Verdict(), &doc); err != nil {
		t.Fatalf("recipe verdict invalid: %v", err)
	}
	if doc.Category == analysis.VerdictError.String() {
		t.Fatalf("recipe run errored: %s", doc.Error)
	}
	if !strings.HasPrefix(doc.Specimen, "rcp") {
		t.Errorf("recipe specimen ID = %q, want rcp-prefixed", doc.Specimen)
	}

	// Same recipe again: cache hit, identical bytes.
	j2 := mustSubmit(t, s, req)
	if !j2.CacheHit() {
		t.Fatalf("identical recipe was not a cache hit")
	}
	if !bytes.Equal(j1.Verdict(), j2.Verdict()) {
		t.Fatalf("recipe replay bytes differ")
	}
}

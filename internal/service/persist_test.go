package service

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scarecrow/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// The durability contract end to end: a verdict computed by one server
// generation is served byte-identical by the next from the WAL alone —
// no lab run, flagged as a cache hit — after a restart that empties the
// in-memory cache.
func TestStoreServesVerdictsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := catalogRequest(11)

	st1 := openStore(t, dir)
	s1 := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16, Store: st1})
	s1.Start()
	j1 := mustSubmit(t, s1, req)
	waitDone(t, j1)
	want := j1.Verdict()
	shutdown(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}

	// Second generation: fresh server, fresh cache, reopened WAL.
	st2 := openStore(t, dir)
	if st2.Len() != 1 {
		t.Fatalf("reopened store has %d keys, want 1", st2.Len())
	}
	s2 := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16, Store: st2})
	s2.Start()
	defer shutdown(t, s2)

	j2 := mustSubmit(t, s2, req)
	if !j2.CacheHit() {
		t.Fatalf("restarted daemon did not serve the committed verdict as a hit")
	}
	if !bytes.Equal(j2.Verdict(), want) {
		t.Fatalf("WAL verdict differs from computed verdict:\n%s\nvs\n%s", j2.Verdict(), want)
	}
	snap := s2.Snapshot()
	if snap.LabRuns != 0 {
		t.Fatalf("restart replay ran the lab %d times, want 0", snap.LabRuns)
	}
	if snap.StoreHits != 1 {
		t.Fatalf("StoreHits = %d, want 1", snap.StoreHits)
	}

	// The store hit was promoted into the memory cache: a third replay
	// must not touch the store again.
	j3 := mustSubmit(t, s2, req)
	if !j3.CacheHit() {
		t.Fatalf("promoted verdict not served from memory")
	}
	if got := s2.Snapshot().StoreHits; got != 1 {
		t.Fatalf("StoreHits = %d after promoted replay, want still 1", got)
	}
}

// Error verdicts must stay retryable: they are neither cached nor
// persisted, so the WAL holds only clean verdicts and a restart re-runs
// failures.
func TestErrorVerdictsNotPersisted(t *testing.T) {
	st := openStore(t, t.TempDir())
	s := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16, Store: st, Resolver: panicResolver})
	s.Start()
	defer shutdown(t, s)
	bomb := mustSubmit(t, s, SubmitRequest{Specimen: "panic-bomb"})
	waitDone(t, bomb)
	if st.Len() != 0 {
		t.Fatalf("store holds %d keys after an error verdict, want 0", st.Len())
	}
	// A clean verdict alongside it does persist.
	ok := mustSubmit(t, s, catalogRequest(5))
	waitDone(t, ok)
	if st.Len() != 1 {
		t.Fatalf("store holds %d keys after a clean verdict, want 1", st.Len())
	}
}

// The sync verdict handler advertises store-served replays with the same
// X-Scarecrow-Cache header the memory cache uses, so clients (and the
// service-smoke SIGKILL test) can assert durability over plain HTTP.
func TestHandlerMarksStoreHitAfterRestart(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"specimen":"kasidet","seed":23}`)

	st1 := openStore(t, dir)
	s1 := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16, Store: st1})
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	resp, err := http.Post(ts1.URL+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("first verdict: %v", err)
	}
	resp.Body.Close()
	ts1.Close()
	shutdown(t, s1)
	st1.Close()

	st2 := openStore(t, dir)
	s2 := NewServer(Config{Workers: 1, QueueDepth: 8, CacheSize: 16, Store: st2})
	s2.Start()
	defer shutdown(t, s2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err = http.Post(ts2.URL+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("replay verdict: %v", err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Scarecrow-Cache"); got != "hit" {
		t.Fatalf("X-Scarecrow-Cache = %q after restart, want hit", got)
	}
}

// Retry-After jitter: deterministic per job key, bounded above the base,
// and actually spread — not the constant that made synchronized clients
// stampede in lockstep.
func TestRetryAfterJitterDeterministicAndSpread(t *testing.T) {
	s := NewServer(Config{Workers: 1, RetryAfter: 2 * time.Second})
	seen := make(map[int]bool)
	for seed := int64(0); seed < 16; seed++ {
		req := catalogRequest(seed)
		a := s.retryAfterSeconds(req)
		b := s.retryAfterSeconds(req)
		if a != b {
			t.Fatalf("seed %d: jitter not deterministic: %d then %d", seed, a, b)
		}
		if a < 2 || a > 5 {
			t.Fatalf("seed %d: Retry-After %d outside [base, base+3]", seed, a)
		}
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 distinct keys produced a single Retry-After value %v — jitter is not spreading", seen)
	}
	// Recipes jitter too, and differently ordered checks are different
	// jobs with (in general) different backoffs.
	r1 := SubmitRequest{Recipe: &Recipe{Checks: []string{"debugger-api", "small-ram"}}}
	if a, b := s.retryAfterSeconds(r1), s.retryAfterSeconds(r1); a != b {
		t.Fatalf("recipe jitter not deterministic: %d vs %d", a, b)
	}
}

// A full queue surfaces the jittered Retry-After over HTTP.
func TestQueueFullAdvertisesJitteredRetryAfter(t *testing.T) {
	// No Start(): jobs queue up and nothing drains, so the 1-deep queue
	// overflows deterministically on the second distinct key.
	s := NewServer(Config{Workers: 1, QueueDepth: 1, CacheSize: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed int) *http.Response {
		t.Helper()
		body := fmt.Sprintf(`{"specimen":"kasidet","seed":%d}`, seed)
		resp, err := http.Post(ts.URL+"/v1/submit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := post(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	resp := post(2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	want := s.retryAfterSeconds(catalogRequest(2))
	if ra != fmt.Sprint(want) {
		t.Fatalf("Retry-After = %q, want %d (deterministic per-key jitter)", ra, want)
	}
	// Unblock the queued job so the server can be torn down cleanly.
	s.Start()
	shutdown(t, s)
}

package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newVerdictCache(2)
	c.Put("a", []byte("va"))
	c.Put("b", []byte("vb"))
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatalf("a missing before eviction")
	}
	c.Put("c", []byte("vc"))
	if _, ok := c.Get("b"); ok {
		t.Errorf("b survived eviction; want it dropped as LRU")
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("va")) {
		t.Errorf("a lost or corrupted after eviction: %q %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || !bytes.Equal(v, []byte("vc")) {
		t.Errorf("c lost or corrupted: %q %v", v, ok)
	}
	if _, _, size := c.Stats(); size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
}

func TestCacheRefreshKeepsOneEntry(t *testing.T) {
	c := newVerdictCache(4)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if v, ok := c.Get("k"); !ok || string(v) != "new" {
		t.Fatalf("refresh: got %q %v, want new", v, ok)
	}
	if _, _, size := c.Stats(); size != 1 {
		t.Errorf("refresh duplicated the entry: size = %d", size)
	}
}

func TestCacheHitRate(t *testing.T) {
	c := newVerdictCache(4)
	if r := c.HitRate(); r != 0 {
		t.Fatalf("empty cache hit rate = %v, want 0", r)
	}
	c.Put("k", []byte("v"))
	c.Get("k")    // hit
	c.Get("miss") // miss
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func TestCacheZeroCapacityNeverStores(t *testing.T) {
	c := newVerdictCache(0)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatalf("zero-capacity cache stored an entry")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newVerdictCache(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("corrupted read: key %q value %q", key, v)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

package service

import (
	"bytes"
	"fmt"
	"testing"
)

// sameShardKeys brute-forces n distinct keys that land on the same cache
// shard, so LRU-order tests see one shard's list, not sixteen.
func sameShardKeys(t *testing.T, c *verdictCache, n int) []string {
	t.Helper()
	target := c.shardFor("seed-key")
	keys := []string{"seed-key"}
	for i := 0; len(keys) < n && i < 100000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if c.shardFor(k) == target {
			keys = append(keys, k)
		}
	}
	if len(keys) < n {
		t.Fatalf("could not find %d same-shard keys", n)
	}
	return keys
}

func cacheSize(c *verdictCache) int {
	_, _, _, size := c.Stats()
	return size
}

func TestCacheLRUEvictionWithinShard(t *testing.T) {
	// Capacity 32 = 2 entries per shard.
	c := newVerdictCache(32)
	k := sameShardKeys(t, c, 3)
	c.Put(k[0], []byte("va"))
	c.Put(k[1], []byte("vb"))
	// Touch k0 so k1 becomes the shard's LRU victim.
	if _, ok := c.Get(k[0]); !ok {
		t.Fatalf("k0 missing before eviction")
	}
	c.Put(k[2], []byte("vc"))
	if _, ok := c.Get(k[1]); ok {
		t.Errorf("k1 survived eviction; want it dropped as shard LRU")
	}
	if v, ok := c.Get(k[0]); !ok || !bytes.Equal(v, []byte("va")) {
		t.Errorf("k0 lost or corrupted after eviction: %q %v", v, ok)
	}
	if v, ok := c.Get(k[2]); !ok || !bytes.Equal(v, []byte("vc")) {
		t.Errorf("k2 lost or corrupted: %q %v", v, ok)
	}
	hits, _, evictions, size := c.Stats()
	if size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
	if hits == 0 {
		t.Errorf("hits = 0 after successful Gets")
	}
}

// Keys on different shards never evict each other: the bound is per
// shard, which is exactly what makes the shards lock-independent.
func TestCacheShardsEvictIndependently(t *testing.T) {
	c := newVerdictCache(16) // 1 entry per shard
	same := sameShardKeys(t, c, 2)
	var other string
	for i := 0; ; i++ {
		other = fmt.Sprintf("other-%d", i)
		if c.shardFor(other) != c.shardFor(same[0]) {
			break
		}
	}
	c.Put(same[0], []byte("a"))
	c.Put(other, []byte("b"))
	if _, ok := c.Get(same[0]); !ok {
		t.Fatalf("cross-shard Put evicted an unrelated shard's entry")
	}
	c.Put(same[1], []byte("c")) // same shard: evicts same[0]
	if _, ok := c.Get(same[0]); ok {
		t.Fatalf("same-shard Put did not evict at capacity")
	}
	if _, ok := c.Get(other); !ok {
		t.Fatalf("other shard's entry lost")
	}
}

func TestCachePerShardCounters(t *testing.T) {
	c := newVerdictCache(32)
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("nope")
	var hits, misses uint64
	for _, s := range c.PerShard() {
		hits += s.Hits
		misses += s.Misses
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("per-shard counters sum to hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheRefreshKeepsOneEntry(t *testing.T) {
	c := newVerdictCache(64)
	c.Put("k", []byte("old"))
	c.Put("k", []byte("new"))
	if v, ok := c.Get("k"); !ok || string(v) != "new" {
		t.Fatalf("refresh: got %q %v, want new", v, ok)
	}
	if size := cacheSize(c); size != 1 {
		t.Errorf("refresh duplicated the entry: size = %d", size)
	}
}

func TestCacheHitRate(t *testing.T) {
	c := newVerdictCache(64)
	if r := c.HitRate(); r != 0 {
		t.Fatalf("empty cache hit rate = %v, want 0", r)
	}
	c.Put("k", []byte("v"))
	c.Get("k")    // hit
	c.Get("miss") // miss
	if r := c.HitRate(); r != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", r)
	}
}

func TestCacheZeroCapacityNeverStores(t *testing.T) {
	c := newVerdictCache(0)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); ok {
		t.Fatalf("zero-capacity cache stored an entry")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newVerdictCache(128)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("corrupted read: key %q value %q", key, v)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	data  string
}

func parseSSE(t *testing.T, body string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	for _, block := range strings.Split(strings.TrimSpace(body), "\n\n") {
		var f sseFrame
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
		if f.event == "" {
			t.Fatalf("frame without event field: %q", block)
		}
		frames = append(frames, f)
	}
	return frames
}

func monitorPost(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/monitor", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// The headline flow: stock ransomware streams at least one detection
// frame, then a verdict frame reporting deterred with bounded file loss.
func TestMonitorStreamsDetectionThenVerdict(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	srv.Start()
	defer shutdown(t, srv)
	h := srv.Handler()

	w := monitorPost(t, h, `{"specimen": "wannacry", "seed": 42}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if cc := w.Header().Get("X-Scarecrow-Cache"); cc != "bypass" {
		t.Fatalf("X-Scarecrow-Cache = %q, want bypass", cc)
	}

	frames := parseSSE(t, w.Body.String())
	if len(frames) < 2 {
		t.Fatalf("want >= 2 frames (detection then verdict), got %d: %v", len(frames), frames)
	}
	if frames[0].event != "detection" {
		t.Fatalf("first frame is %q, want detection", frames[0].event)
	}
	last := frames[len(frames)-1]
	if last.event != "verdict" {
		t.Fatalf("final frame is %q, want verdict", last.event)
	}
	for _, f := range frames[:len(frames)-1] {
		if f.event != "detection" {
			t.Fatalf("interior frame is %q, want detection", f.event)
		}
	}

	var doc struct {
		Category  string `json:"category"`
		Deterred  bool   `json:"deterred"`
		FilesLost int    `json:"files_lost_before_kill"`
		Canaries  int    `json:"canaries_planted"`
	}
	if err := json.Unmarshal([]byte(last.data), &doc); err != nil {
		t.Fatalf("verdict frame is not JSON: %v\n%s", err, last.data)
	}
	if doc.Category != "deterred" || !doc.Deterred {
		t.Fatalf("verdict = %+v, want deterred", doc)
	}
	if doc.FilesLost > 5 {
		t.Fatalf("lost %d files before kill, want <= 5", doc.FilesLost)
	}
	if doc.Canaries == 0 {
		t.Fatalf("verdict reports zero planted canaries")
	}
}

// Monitored runs bypass the verdict cache: two identical requests both
// execute and stream, and neither touches the cache or the store.
func TestMonitorBypassesCache(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	srv.Start()
	defer shutdown(t, srv)
	h := srv.Handler()

	first := monitorPost(t, h, `{"specimen": "wannacry", "seed": 7}`)
	second := monitorPost(t, h, `{"specimen": "wannacry", "seed": 7}`)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses = %d, %d", first.Code, second.Code)
	}
	// Determinism: identical requests stream byte-identical frames — proof
	// both actually ran rather than one replaying stale bytes from a cache
	// (the cache stores verdict JSON, not SSE streams).
	if first.Body.String() != second.Body.String() {
		t.Fatalf("identical monitor requests diverged:\n%s\nvs\n%s", first.Body.String(), second.Body.String())
	}
	st := srv.Snapshot()
	if st.MonitorRuns != 2 {
		t.Fatalf("monitor_runs = %d, want 2 (cache must not absorb monitored runs)", st.MonitorRuns)
	}
	if st.CacheHits != 0 || st.CacheSize != 0 {
		t.Fatalf("monitored runs leaked into the verdict cache: hits=%d size=%d", st.CacheHits, st.CacheSize)
	}
	if st.MonitorDeterred != 2 {
		t.Fatalf("monitor_deterred = %d, want 2", st.MonitorDeterred)
	}
}

// Observe mode flows through the API and reports survival.
func TestMonitorObserveAction(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	srv.Start()
	defer shutdown(t, srv)

	w := monitorPost(t, srv.Handler(), `{"specimen": "wannacry", "seed": 7, "action": "observe"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	frames := parseSSE(t, w.Body.String())
	last := frames[len(frames)-1]
	var doc struct {
		Category string `json:"category"`
		Detected bool   `json:"detected"`
	}
	if err := json.Unmarshal([]byte(last.data), &doc); err != nil {
		t.Fatalf("verdict: %v", err)
	}
	if doc.Category != "survived" || !doc.Detected {
		t.Fatalf("observe run = %+v, want survived+detected", doc)
	}
}

func TestMonitorRejectsBadRequests(t *testing.T) {
	srv := NewServer(Config{Workers: 1})
	srv.Start()
	defer shutdown(t, srv)
	h := srv.Handler()

	cases := []struct {
		name, body string
		code       int
	}{
		{"bad action", `{"specimen": "wannacry", "action": "nuke"}`, http.StatusBadRequest},
		{"unknown field", `{"specimen": "wannacry", "bogus": 1}`, http.StatusBadRequest},
		{"unknown specimen", `{"specimen": "no-such"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := monitorPost(t, h, tc.body); w.Code != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, w.Code, tc.code, w.Body.String())
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/monitor", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status = %d, want 405", w.Code)
	}
}

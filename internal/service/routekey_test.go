package service

import (
	"encoding/json"
	"testing"
)

// RouteKey must agree byte for byte with the resolver's cache key for
// every resolvable request — it is the shard-routing identity, and a
// front that disagrees with its backends about a cell's key would pin
// the cache and the WAL record on different machines.
func TestRouteKeyMatchesResolvedKey(t *testing.T) {
	seed := int64(7)
	reqs := []SubmitRequest{
		{Specimen: "kasidet"},
		{Specimen: "wannacry", Profile: "cuckoo-vbox-sandbox", Seed: &seed},
		{Recipe: &Recipe{Checks: []string{"debugger-api", "vm-mac"}}},
		{Recipe: &Recipe{Checks: []string{"small-ram"}, React: "sleep", Payload: "beacon"}, Seed: &seed},
		{Predicate: json.RawMessage(`{"op":"leaf","entry":"file:deepfreeze"}`)},
		{Predicate: json.RawMessage(`{"op":"and","kids":[{"op":"leaf","entry":"file:deepfreeze"},{"op":"leaf","entry":"wt:dns-cache"}]}`), Seed: &seed},
	}
	for i, req := range reqs {
		r, err := resolveRequest(req)
		if err != nil {
			t.Fatalf("request %d does not resolve: %v", i, err)
		}
		key, err := RouteKey(req)
		if err != nil {
			t.Fatalf("request %d has no route key: %v", i, err)
		}
		if key != r.key {
			t.Errorf("request %d: RouteKey %q != resolved key %q", i, key, r.key)
		}
	}
}

// Structurally identical predicates with different JSON formatting key
// identically — the canonical fingerprint, not the bytes, routes.
func TestRouteKeyCanonicalizesPredicates(t *testing.T) {
	a, err := RouteKey(SubmitRequest{Predicate: json.RawMessage(`{"op":"leaf","entry":"file:deepfreeze"}`)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouteKey(SubmitRequest{Predicate: json.RawMessage(`{ "op": "leaf", "entry": "file:deepfreeze" }`)})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("reformatted predicate routes differently: %q vs %q", a, b)
	}
}

// Un-keyable requests are errors; merely unknown names are not — they
// still key consistently and the owning backend rejects them.
func TestRouteKeyErrors(t *testing.T) {
	bad := []SubmitRequest{
		{},
		{Specimen: "kasidet", Recipe: &Recipe{Checks: []string{"vm-mac"}}},
		{Specimen: "kasidet", Profile: "no-such-profile"},
		{Predicate: json.RawMessage(`{"op":`)},
	}
	for i, req := range bad {
		if _, err := RouteKey(req); err == nil {
			t.Errorf("un-keyable request %d got a route key", i)
		}
	}
	if _, err := RouteKey(SubmitRequest{Specimen: "no-such-specimen"}); err != nil {
		t.Fatalf("unknown catalog name failed to key: %v", err)
	}
	if _, err := RouteKey(SubmitRequest{Recipe: &Recipe{Checks: []string{"no-such-check"}}}); err != nil {
		t.Fatalf("unknown recipe check failed to key: %v", err)
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"scarecrow/internal/evasion"
	"scarecrow/internal/malware"
	"scarecrow/internal/synth"
	"scarecrow/internal/winsim"
)

// SubmitRequest is the body of POST /v1/submit and /v1/verdict: which
// specimen to run (a catalog name or an inline evasion recipe), on which
// machine profile, with which seed. The triple (specimen, profile, seed)
// fully determines the verdict — runs are deterministic — so it is also
// the cache and coalescing key.
type SubmitRequest struct {
	// Specimen names a built-in sample (wannacry, locky, kasidet, scaware,
	// spawner, toolkiller, joe:<id>, mg:<id>). Exactly one of Specimen,
	// Recipe, and Predicate must be set.
	Specimen string `json:"specimen,omitempty"`
	// Recipe assembles a custom evasive specimen from named probes.
	Recipe *Recipe `json:"recipe,omitempty"`
	// Predicate carries a synthesized predicate tree (synth.Node JSON) —
	// the fuzzer's campaign-scale submission path. The cache key is the
	// predicate's canonical fingerprint, so structurally identical trees
	// coalesce regardless of JSON formatting.
	Predicate json.RawMessage `json:"predicate,omitempty"`
	// Profile is the machine profile (default baremetal-sandbox).
	Profile string `json:"profile,omitempty"`
	// Seed drives machine construction (default 1).
	Seed *int64 `json:"seed,omitempty"`
}

// Recipe describes an evasive specimen as data: a disjunction of named
// probes, a reaction, and a payload. It is the over-the-wire counterpart
// of malware.Specimen for samples that are not in the catalog.
type Recipe struct {
	// Checks lists probe names from RecipeChecks, tried in order (the
	// specimen's evasive disjunction — any one firing triggers React).
	Checks []string `json:"checks"`
	// React is one of RecipeReactions (default "terminate").
	React string `json:"react,omitempty"`
	// Payload is one of RecipePayloads (default "persist").
	Payload string `json:"payload,omitempty"`
}

// recipeChecks maps wire names to evasion-probe constructors. Arguments
// are canned: a recipe names behaviours, not parameters, so the same name
// always builds the same probe and cache keys stay meaningful.
var recipeChecks = map[string]func() evasion.Check{
	"debugger-api":    evasion.DebuggerAPI,
	"remote-debugger": evasion.RemoteDebugger,
	"kernel-debugger": evasion.KernelDebugger,
	"vmware-registry": func() evasion.Check {
		return evasion.RegistryKey("reg:vmware-tools", `HKLM\SOFTWARE\VMware, Inc.\VMware Tools`)
	},
	"vbox-registry": func() evasion.Check {
		return evasion.RegistryKey("reg:vbox-guestadd", `HKLM\SOFTWARE\Oracle\VirtualBox Guest Additions`)
	},
	"vbox-driver": func() evasion.Check {
		return evasion.FileExists("file:vboxmouse", `C:\Windows\System32\drivers\VBoxMouse.sys`)
	},
	"sandboxie-module": func() evasion.Check {
		return evasion.ModuleLoaded("mod:sbiedll", "SbieDll.dll")
	},
	"ollydbg-window": func() evasion.Check {
		return evasion.WindowPresent("win:ollydbg", "OLLYDBG")
	},
	"small-ram":   func() evasion.Check { return evasion.SmallRAM(2 << 30) },
	"low-uptime":  func() evasion.Check { return evasion.LowUptime(12 * time.Minute) },
	"sample-path": evasion.SamplePath,
	"vm-mac": func() evasion.Check {
		return evasion.VMMAC("08:00:27", "00:0c:29", "00:50:56")
	},
	"hook-scan": func() evasion.Check {
		return evasion.InlineHook("IsDebuggerPresent", "RegOpenKeyEx")
	},
	"peb-read":     func() evasion.Check { return evasion.FewCoresPEB(2) },
	"rdtsc-timing": func() evasion.Check { return evasion.RDTSCVMExit(1000) },
	"nxdomain-sinkhole": func() evasion.Check {
		return evasion.NXDomainResolves("scarecrowd-killswitch.invalid")
	},
}

// recipeReactions maps wire names to reaction constructors.
var recipeReactions = map[string]func() malware.Reaction{
	"terminate":   malware.ReactTerminate,
	"sleep":       malware.ReactSleepLoop,
	"self-spawn":  func() malware.Reaction { return malware.ReactSelfSpawn(30 * time.Millisecond) },
	"self-delete": malware.ReactSelfDelete,
	"benign":      func() malware.Reaction { return malware.ReactBenign("recipe") },
}

// recipePayloads maps wire names to payload constructors, parameterized by
// the recipe's derived ID so dropped artifacts are distinguishable.
var recipePayloads = map[string]func(id string) malware.Payload{
	"persist": func(id string) malware.Payload {
		return malware.PayloadRegistryPersist(id, id+"_svc.exe")
	},
	"dropper": func(id string) malware.Payload {
		return malware.Compose(
			malware.PayloadDropper(id+"_drop.exe"),
			malware.PayloadRegistryPersist(id, id+"_svc.exe"),
		)
	},
	"ransomware": func(id string) malware.Payload {
		return malware.PayloadRansomware(".crypt", "_"+id+"_RECOVER.txt")
	},
	"beacon": func(id string) malware.Payload {
		return malware.PayloadBeacon(id + ".dga-c2.net")
	},
}

// RecipeChecks, RecipeReactions and RecipePayloads list the valid wire
// names, sorted — validation errors and docs enumerate them.
func RecipeChecks() []string    { return sortedKeys(recipeChecks) }
func RecipeReactions() []string { return sortedKeys(recipeReactions) }
func RecipePayloads() []string  { return sortedKeys(recipePayloads) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// resolved is a validated request: the specimen is freshly built (never
// shared between jobs) and key is the canonical cache identity.
type resolved struct {
	specimen *malware.Specimen
	profile  winsim.ProfileName
	seed     int64
	key      string
}

// DefaultProfile is the profile used when a request leaves it empty: the
// paper's bare-metal analysis cluster.
const DefaultProfile = winsim.ProfileBareMetalSandbox

// defaultSeed seeds runs that do not pin one. Any fixed value works; 1
// matches the CLI defaults.
const defaultSeed = 1

// resolveRequest validates the request and builds its specimen and
// canonical key. Errors are client errors (HTTP 400).
func resolveRequest(req SubmitRequest) (resolved, error) {
	var r resolved
	r.profile = DefaultProfile
	if req.Profile != "" {
		r.profile = winsim.ProfileName(req.Profile)
		if !winsim.ValidProfile(r.profile) {
			names := make([]string, 0, len(winsim.Profiles()))
			for _, p := range winsim.Profiles() {
				names = append(names, string(p))
			}
			return r, fmt.Errorf("unknown profile %q (known: %s)", req.Profile, strings.Join(names, ", "))
		}
	}
	r.seed = defaultSeed
	if req.Seed != nil {
		r.seed = *req.Seed
	}

	set := 0
	for _, present := range []bool{req.Specimen != "", req.Recipe != nil, len(req.Predicate) > 0} {
		if present {
			set++
		}
	}
	if set > 1 {
		return r, fmt.Errorf("specimen, recipe, and predicate are mutually exclusive")
	}

	var specKey string
	switch {
	case req.Specimen != "":
		s, err := malware.Resolve(req.Specimen)
		if err != nil {
			return r, err
		}
		r.specimen = s
		specKey = "cat:" + req.Specimen
	case req.Recipe != nil:
		s, canon, err := buildRecipe(*req.Recipe)
		if err != nil {
			return r, err
		}
		r.specimen = s
		specKey = "rcp:" + canon
	case len(req.Predicate) > 0:
		s, fp, err := buildPredicate(req.Predicate)
		if err != nil {
			return r, err
		}
		r.specimen = s
		specKey = "syn:" + fp
	default:
		return r, fmt.Errorf("request must name a specimen, carry a recipe, or carry a predicate")
	}
	r.key = fmt.Sprintf("%s|%s|%d", specKey, r.profile, r.seed)
	return r, nil
}

// buildRecipe assembles a specimen from a recipe and returns it with the
// recipe's canonical form. Check order is preserved — it decides which
// probe fires first, so differently ordered recipes are different
// specimens.
func buildRecipe(rec Recipe) (*malware.Specimen, string, error) {
	if len(rec.Checks) == 0 {
		return nil, "", fmt.Errorf("recipe needs at least one check (known: %s)", strings.Join(RecipeChecks(), ", "))
	}
	checks := make([]evasion.Check, 0, len(rec.Checks))
	for _, name := range rec.Checks {
		mk, ok := recipeChecks[name]
		if !ok {
			return nil, "", fmt.Errorf("unknown recipe check %q (known: %s)", name, strings.Join(RecipeChecks(), ", "))
		}
		checks = append(checks, mk())
	}
	react := rec.React
	if react == "" {
		react = "terminate"
	}
	mkReact, ok := recipeReactions[react]
	if !ok {
		return nil, "", fmt.Errorf("unknown recipe reaction %q (known: %s)", react, strings.Join(RecipeReactions(), ", "))
	}
	payload := rec.Payload
	if payload == "" {
		payload = "persist"
	}
	mkPayload, ok := recipePayloads[payload]
	if !ok {
		return nil, "", fmt.Errorf("unknown recipe payload %q (known: %s)", payload, strings.Join(RecipePayloads(), ", "))
	}

	canon := fmt.Sprintf("checks=%s;react=%s;payload=%s", strings.Join(rec.Checks, "+"), react, payload)
	id := fmt.Sprintf("rcp%08x", fnvHash(canon))
	s := &malware.Specimen{
		ID:      id,
		Family:  "Recipe",
		Source:  malware.Source("recipe"),
		Image:   malware.ImagePath(id),
		Checks:  checks,
		React:   mkReact(),
		Payload: mkPayload(id),
		Notes:   canon,
	}
	return s, canon, nil
}

// buildPredicate decodes, bounds-checks, and compiles a synthesized
// predicate into a specimen, returning it with the predicate's canonical
// fingerprint (the cache identity). Errors are client errors.
func buildPredicate(raw json.RawMessage) (*malware.Specimen, string, error) {
	var n *synth.Node
	if err := json.Unmarshal(raw, &n); err != nil {
		return nil, "", fmt.Errorf("decoding predicate: %w", err)
	}
	if err := synth.CheckBounds(n); err != nil {
		return nil, "", err
	}
	s, err := synth.ToSpecimen(n, synth.EntryIndex())
	if err != nil {
		return nil, "", err
	}
	return s, n.Fingerprint(), nil
}

// RouteKey returns the canonical verdict key for a request — the same
// (specimen|profile|seed) string the service caches and commits under —
// without building the specimen. It is the shard-routing identity: a
// front hashing RouteKey sends every request for one cell to the same
// backend, so that cell's cache entry and WAL record live in exactly
// one place. Requests whose key cannot be determined (unknown profile,
// more than one body, undecodable predicate) return an error; unknown
// catalog or recipe names still key consistently — the owning backend
// rejects them with the authoritative 400.
func RouteKey(req SubmitRequest) (string, error) {
	profile := DefaultProfile
	if req.Profile != "" {
		profile = winsim.ProfileName(req.Profile)
		if !winsim.ValidProfile(profile) {
			return "", fmt.Errorf("unknown profile %q", req.Profile)
		}
	}
	seed := int64(defaultSeed)
	if req.Seed != nil {
		seed = *req.Seed
	}
	set := 0
	for _, present := range []bool{req.Specimen != "", req.Recipe != nil, len(req.Predicate) > 0} {
		if present {
			set++
		}
	}
	if set > 1 {
		return "", fmt.Errorf("specimen, recipe, and predicate are mutually exclusive")
	}
	var specKey string
	switch {
	case req.Specimen != "":
		specKey = "cat:" + req.Specimen
	case req.Recipe != nil:
		react := req.Recipe.React
		if react == "" {
			react = "terminate"
		}
		payload := req.Recipe.Payload
		if payload == "" {
			payload = "persist"
		}
		specKey = fmt.Sprintf("rcp:checks=%s;react=%s;payload=%s",
			strings.Join(req.Recipe.Checks, "+"), react, payload)
	case len(req.Predicate) > 0:
		var n *synth.Node
		if err := json.Unmarshal(req.Predicate, &n); err != nil {
			return "", fmt.Errorf("decoding predicate: %w", err)
		}
		if err := synth.CheckBounds(n); err != nil {
			return "", err
		}
		specKey = "syn:" + n.Fingerprint()
	default:
		return "", fmt.Errorf("request must name a specimen, carry a recipe, or carry a predicate")
	}
	return fmt.Sprintf("%s|%s|%d", specKey, profile, seed), nil
}

func fnvHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// jitterKey canonicalizes a request into the job-key shape without
// building the specimen — it feeds the deterministic Retry-After jitter,
// which must be computable even for submissions the full resolver would
// reject (the 429 path never resolves). For resolvable requests it
// matches the cache key's fields, so the jitter is stable per job.
func jitterKey(req SubmitRequest) string {
	profile := string(DefaultProfile)
	if req.Profile != "" {
		profile = req.Profile
	}
	seed := int64(defaultSeed)
	if req.Seed != nil {
		seed = *req.Seed
	}
	spec := "cat:" + req.Specimen
	switch {
	case req.Recipe != nil:
		spec = fmt.Sprintf("rcp:checks=%s;react=%s;payload=%s",
			strings.Join(req.Recipe.Checks, "+"), req.Recipe.React, req.Recipe.Payload)
	case len(req.Predicate) > 0:
		// Raw predicate bytes stand in for the fingerprint: same
		// submission bytes → same jitter, with no parse on the 429 path.
		spec = fmt.Sprintf("syn:%08x", fnvHash(string(req.Predicate)))
	}
	return fmt.Sprintf("%s|%s|%d", spec, profile, seed)
}

package service

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// submitResponse is the body of POST /v1/submit.
type submitResponse struct {
	ID string `json:"id"`
	// State at acceptance time: "done" on a cache hit, "queued" otherwise.
	State JobState `json:"state"`
	// CacheHit marks verdicts served without a run.
	CacheHit bool `json:"cache_hit"`
	// Result points at the polling endpoint.
	Result string `json:"result"`
}

// resultResponse is the body of GET /v1/result/{id}. Verdict is the
// canonical verdict JSON, present once State is "done".
type resultResponse struct {
	ID       string          `json:"id"`
	State    JobState        `json:"state"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Verdict  json.RawMessage `json:"verdict,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/submit   — enqueue, return a job id immediately
//	GET  /v1/result/  — poll a job by id
//	POST /v1/verdict  — submit and wait for the verdict (synchronous)
//	POST /v1/monitor  — run under the deterrence tier, stream SSE events
//	GET  /healthz     — liveness
//	GET  /statusz     — serving statistics + aggregated run report
//	GET  /metrics     — expvar-format counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/v1/verdict", s.handleVerdict)
	mux.HandleFunc("/v1/monitor", s.handleMonitor)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// submitError maps a Submit failure to its HTTP status. Queue-full carries
// Retry-After so well-behaved clients back off instead of hammering.
func (s *Server) submitError(w http.ResponseWriter, req SubmitRequest, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(req)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

// retryAfterSeconds is the 429 backoff for one request: the configured
// base plus a deterministic 0–3 s jitter derived from the job key. A
// constant Retry-After makes synchronized clients (scarebench fans out
// identical workers) retry in lockstep and collide with the same full
// queue again; keying the jitter off the request spreads the herd while
// staying reproducible — the same submission always hears the same
// backoff, so tests and traces are stable.
func (s *Server) retryAfterSeconds(req SubmitRequest) int {
	base := int(s.cfg.RetryAfter.Seconds() + 0.5)
	if base < 1 {
		base = 1
	}
	return base + int(fnvHash(jitterKey(req))%4)
}

func decodeSubmit(w http.ResponseWriter, r *http.Request) (SubmitRequest, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return SubmitRequest{}, false
	}
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("decoding request: %v", err)})
		return SubmitRequest{}, false
	}
	return req, true
}

// handleSubmit accepts a submission and returns immediately with a job id.
// The enqueue itself never blocks: a full queue is a 429, so the listener
// goroutine always stays responsive.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSubmit(w, r)
	if !ok {
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		s.submitError(w, req, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:       job.ID,
		State:    job.State(),
		CacheHit: job.CacheHit(),
		Result:   "/v1/result/" + job.ID,
	})
}

// handleResult polls a job.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	job, ok := s.Lookup(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown job %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, resultResponse{
		ID:       job.ID,
		State:    job.State(),
		CacheHit: job.CacheHit(),
		Verdict:  json.RawMessage(job.Verdict()),
	})
}

// handleVerdict is the synchronous path: submit and block until the verdict
// is available or the client goes away. Backpressure still applies — a full
// queue rejects rather than parking the request.
func (s *Server) handleVerdict(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSubmit(w, r)
	if !ok {
		return
	}
	job, err := s.Submit(req)
	if err != nil {
		s.submitError(w, req, err)
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// Client gone; the job still completes and feeds the cache.
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Scarecrow-Job", job.ID)
	if job.CacheHit() {
		w.Header().Set("X-Scarecrow-Cache", "hit")
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(job.Verdict())
	_, _ = w.Write([]byte("\n"))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleMetrics renders the counters in expvar's JSON map format. The map
// is built per request from an unpublished expvar.Map — the process-global
// expvar registry would collide across the multiple Server instances the
// tests run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Snapshot()
	m := new(expvar.Map).Init()
	addInt := func(key string, v int64) {
		i := new(expvar.Int)
		i.Set(v)
		m.Set(key, i)
	}
	addInt("submitted", int64(st.Submitted))
	addInt("completed", int64(st.Completed))
	addInt("coalesced", int64(st.Coalesced))
	addInt("rejected", int64(st.Rejected))
	addInt("lab_runs", int64(st.LabRuns))
	addInt("cache_hits", int64(st.CacheHits))
	addInt("cache_misses", int64(st.CacheMisses))
	addInt("cache_evictions", int64(st.CacheEvictions))
	addInt("cache_size", int64(st.CacheSize))
	addInt("store_keys", int64(st.StoreKeys))
	addInt("store_hits", int64(st.StoreHits))
	addInt("store_errors", int64(st.StoreErrors))
	addInt("monitor_runs", int64(st.MonitorRuns))
	addInt("monitor_deterred", int64(st.MonitorDeterred))
	addInt("monitor_rejected", int64(st.MonitorRejected))
	addInt("queue_depth", int64(st.QueueDepth))
	addInt("workers", int64(st.Workers))
	addInt("verdict_errors", int64(st.Report.VerdictErrors))
	addInt("recovered_panics", int64(st.Report.RecoveredPanics))
	f := new(expvar.Float)
	f.Set(st.CacheHitRate)
	m.Set("cache_hit_rate", f)
	// Per-shard cache counters: a skewed key distribution shows up here
	// as one shard soaking the traffic the sharding was meant to spread.
	for i, sh := range s.cache.PerShard() {
		prefix := fmt.Sprintf("cache_shard_%02d_", i)
		addInt(prefix+"hits", int64(sh.Hits))
		addInt(prefix+"misses", int64(sh.Misses))
		addInt(prefix+"evictions", int64(sh.Evictions))
		addInt(prefix+"size", int64(sh.Size))
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "%s\n", m.String())
}

package service

import (
	"container/list"
	"sync"
)

// verdictCache is a fixed-capacity LRU over canonical verdict JSON, keyed
// by the request's (specimen, profile, seed) canonical key. Because runs
// are deterministic (the differential harness proves pooled and fresh
// machines produce bit-identical results), a cached verdict is exact, not
// approximate — eviction is purely a memory bound.
type verdictCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key     string
	verdict []byte
}

func newVerdictCache(capacity int) *verdictCache {
	return &verdictCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached verdict bytes for key, promoting the entry. The
// returned slice is shared — callers must not mutate it.
func (c *verdictCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).verdict, true
}

// Put inserts or refreshes a verdict, evicting the least recently used
// entry when over capacity.
func (c *verdictCache) Put(key string, verdict []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).verdict = verdict
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, verdict: verdict})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the hit/miss counters and current size.
func (c *verdictCache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *verdictCache) HitRate() float64 {
	hits, misses, _ := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

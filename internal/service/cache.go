package service

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// cacheShards is the fixed shard count of the verdict cache. Sixteen
// shards took the single-mutex LRU — every worker completion and every
// submission fast-path contended one lock under `scarebench -c 8` — down
// to effectively uncontended: keys spread by FNV hash, so two concurrent
// requests serialize only when they touch the same sixteenth of the
// keyspace.
const cacheShards = 16

// verdictCache is a sharded fixed-capacity LRU over canonical verdict
// JSON, keyed by the request's (specimen, profile, seed) canonical key.
// Because runs are deterministic (the differential harness proves pooled
// and fresh machines produce bit-identical results), a cached verdict is
// exact, not approximate — eviction is purely a memory bound, enforced
// per shard.
type verdictCache struct {
	shards [cacheShards]cacheShard
}

// cacheShard is one independently locked LRU. Capacity, order, and the
// counters are all guarded by mu.
type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key     string
	verdict []byte
}

func newVerdictCache(capacity int) *verdictCache {
	perShard := (capacity + cacheShards - 1) / cacheShards
	if capacity <= 0 {
		perShard = 0
	}
	c := &verdictCache{}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

// init sizes an unshared shard during construction.
func (s *cacheShard) init(perShard int) {
	s.cap = perShard
	s.order = list.New()
	s.items = make(map[string]*list.Element, perShard)
}

// shardFor hashes the key onto its shard.
func (c *verdictCache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the cached verdict bytes for key, promoting the entry. The
// returned slice is shared — callers must not mutate it.
func (c *verdictCache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.order.MoveToFront(el)
	return el.Value.(*cacheEntry).verdict, true
}

// Put inserts or refreshes a verdict, evicting the least recently used
// entry of the key's shard when over capacity.
func (c *verdictCache) Put(key string, verdict []byte) {
	s := c.shardFor(key)
	if s.cap <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).verdict = verdict
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&cacheEntry{key: key, verdict: verdict})
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
}

// ShardStats is one shard's counters, exported per shard in /metrics so
// a skewed key distribution (one hot shard soaking all the traffic) is
// visible from outside.
type ShardStats struct {
	Hits, Misses, Evictions uint64
	Size                    int
}

// PerShard snapshots every shard's counters in shard order.
func (c *verdictCache) PerShard() [cacheShards]ShardStats {
	var out [cacheShards]ShardStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out[i] = ShardStats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions, Size: s.order.Len()}
		s.mu.Unlock()
	}
	return out
}

// Stats returns the aggregate hit/miss/eviction counters and total size.
func (c *verdictCache) Stats() (hits, misses, evictions uint64, size int) {
	for _, s := range c.PerShard() {
		hits += s.Hits
		misses += s.Misses
		evictions += s.Evictions
		size += s.Size
	}
	return hits, misses, evictions, size
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (c *verdictCache) HitRate() float64 {
	hits, misses, _, _ := c.Stats()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Package service is scarecrowd's verdict engine: a concurrent front end
// over the analysis lab cluster that answers "is this specimen evasive,
// and does Scarecrow deactivate it?" over HTTP.
//
// Architecture: a bounded job queue feeds a fixed pool of workers. Each
// worker owns its own analysis.Lab per machine profile — the lab's
// template-snapshot pool and the machines' trace recorders are
// single-owner structures, so nothing lab-shaped is ever shared between
// goroutines. Backpressure is explicit: a full queue rejects the
// submission (HTTP 429 + Retry-After) instead of blocking the listener.
//
// Because runs are deterministic (PR 3's differential harness proves
// pooled and fresh machines bit-identical), the verdict for a
// (specimen, profile, seed) triple is a pure function of the request. The
// service exploits that twice: an LRU cache serves repeat submissions
// without a run, and in-flight submissions for the same key coalesce onto
// one queued job. Both paths return byte-identical verdict JSON.
//
// Failure stays contained: a panic anywhere in a run is absorbed by the
// lab (SampleResult.Err, VerdictError) or, as a last resort, by the
// worker's own recover — a poisoned specimen fails its own job and the
// worker keeps serving.
package service

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/store"
	"scarecrow/internal/winsim"
)

// Config sizes the service.
type Config struct {
	// Workers is the lab-cluster width (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue; a full queue rejects submissions
	// with ErrQueueFull (default 4× workers).
	QueueDepth int
	// CacheSize is the verdict LRU capacity in entries (default 4096).
	CacheSize int
	// RetryAfter is the base backoff the 429 response advertises (default
	// 1s). Each response adds a deterministic per-job-key jitter on top,
	// so a herd of synchronized clients retrying the same corpus spreads
	// out instead of stampeding in lockstep.
	RetryAfter time.Duration
	// Store, when non-nil, is the durable verdict store: clean verdicts
	// are appended to its WAL on completion, and submissions that miss
	// the in-memory cache are answered from it without a lab run — a
	// restarted daemon serves every verdict it ever committed. The
	// caller owns the store's lifecycle (Open before NewServer, Close
	// after Shutdown).
	Store *store.Store
	// Resolver turns a request into a runnable specimen + canonical cache
	// key. Nil means the built-in catalog/recipe resolver; tests and
	// embedders can extend the catalog.
	Resolver func(SubmitRequest) (*malware.Specimen, string, error)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4096
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// JobState is the lifecycle of one submission.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the paired run.
	JobRunning JobState = "running"
	// JobDone: the verdict is available.
	JobDone JobState = "done"
)

// Job is one accepted submission. Fields are owned by the server's mutex;
// readers outside the package use the accessor methods.
type Job struct {
	// ID addresses the job in GET /v1/result/{id}.
	ID string
	// Key is the canonical (specimen, profile, seed) identity.
	Key string

	spec resolved

	mu       sync.Mutex
	state    JobState
	verdict  []byte // canonical verdict JSON, set once at completion
	cacheHit bool
	created  time.Time
	done     chan struct{}
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Verdict returns the canonical verdict JSON, or nil while pending. The
// slice is shared — callers must not mutate it.
func (j *Job) Verdict() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.verdict
}

// CacheHit reports whether the verdict was served from the cache without
// a run.
func (j *Job) CacheHit() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cacheHit
}

// Done returns a channel closed when the verdict is available.
func (j *Job) Done() <-chan struct{} { return j.done }

// publish completes the job: records the verdict bytes under the job
// lock, then wakes waiters. Must be called exactly once per job.
func (j *Job) publish(verdict []byte, cacheHit bool) {
	j.mu.Lock()
	j.state = JobDone
	j.verdict = verdict
	j.cacheHit = cacheHit
	j.mu.Unlock()
	close(j.done)
}

// Sentinel submission failures, mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull: the bounded queue is at capacity (HTTP 429).
	ErrQueueFull = fmt.Errorf("service: job queue full")
	// ErrDraining: the server is shutting down (HTTP 503).
	ErrDraining = fmt.Errorf("service: draining, not accepting submissions")
)

// Server is the verdict service: worker pool, bounded queue, verdict
// cache, and job registry. Create with NewServer, start with Start, serve
// via Handler, stop with Shutdown.
type Server struct {
	cfg   Config
	cache *verdictCache
	queue chan *Job

	// monitorSem bounds concurrent /v1/monitor streams to the worker
	// count; it is its own synchronization (channel semantics), as is the
	// monitored-run lab pool below it.
	monitorSem  chan struct{}
	monitorLabs monitorLabs

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*Job // job ID → job
	inflight map[string]*Job // canonical key → queued/running job
	// finished is the FIFO of completed job IDs backing the registry's
	// retention bound: the oldest done jobs are forgotten once
	// jobRetention is exceeded, so a long-running daemon's registry stays
	// bounded. Polling a forgotten ID is a 404.
	finished []string
	// serving statistics (all under mu)
	submitted, completed, coalesced, rejected uint64
	labRuns, verdictErrors, recoveredPanics   uint64
	storeHits, storeErrors                    uint64
	monitorRuns, monitorDeterred              uint64
	monitorRejected                           uint64
	virtual                                   time.Duration

	workers sync.WaitGroup
	started time.Time

	// commitc feeds the committer goroutine, which folds concurrent
	// verdict commits into store.PutBatch group commits. Nil when the
	// server has no store or has not started.
	commitc   chan commitReq
	committer sync.WaitGroup
}

// commitReq is one verdict awaiting group commit. done receives the
// batch's write error (nil on success) exactly once.
type commitReq struct {
	key  string
	val  []byte
	done chan error
}

// NewServer builds a stopped server; Start launches the workers.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:        cfg,
		cache:      newVerdictCache(cfg.CacheSize),
		queue:      make(chan *Job, cfg.QueueDepth),
		monitorSem: make(chan struct{}, cfg.Workers),
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		started:    time.Now(),
	}
}

// Start launches the worker pool. Submissions made before Start sit in
// the queue and run once workers exist.
func (s *Server) Start() {
	s.mu.Lock()
	s.started = time.Now()
	if s.cfg.Store != nil && s.commitc == nil {
		s.commitc = make(chan commitReq, s.cfg.Workers)
		s.committer.Add(1)
		go s.commitLoop()
	}
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
}

// commitLoop is the group committer: it drains every commit request
// already queued into one store.PutBatch call — one lock acquisition and
// one write(2) for the whole batch — then answers each waiter. Under
// concurrent load the batch grows to the worker count; an idle service
// degenerates to batches of one, which is exactly the old Put path. No
// timer is involved, so a lone commit is never delayed.
func (s *Server) commitLoop() {
	defer s.committer.Done()
	var batch []store.Record
	var waiters []chan error
	for req := range s.commitc {
		batch = append(batch[:0], store.Record{Key: req.key, Val: req.val})
		waiters = append(waiters[:0], req.done)
	drain:
		for {
			select {
			case more, ok := <-s.commitc:
				if !ok {
					break drain
				}
				batch = append(batch, store.Record{Key: more.key, Val: more.val})
				waiters = append(waiters, more.done)
			default:
				break drain
			}
		}
		err := s.cfg.Store.PutBatch(batch)
		for _, done := range waiters {
			done <- err
		}
	}
}

// commit blocks until the verdict is durably committed (possibly as part
// of a larger batch) and returns the write error.
func (s *Server) commit(key string, val []byte) error {
	done := make(chan error, 1)
	s.commitc <- commitReq{key: key, val: val, done: done}
	return <-done
}

// Submit validates, resolves, and enqueues a request. The returned job may
// already be done (cache hit), may be shared with earlier submissions of
// the same key (coalesced), or may be freshly queued. ErrQueueFull and
// ErrDraining are the refusal modes; resolution failures are client
// errors.
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	res, err := s.resolve(req)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.submitted++

	// Exact-replay fast path: determinism makes the cached bytes the
	// verdict, not an approximation of it.
	if verdict, ok := s.cache.Get(res.key); ok {
		job := s.newJobLocked(res)
		job.publish(verdict, true)
		s.retireLocked(job.ID)
		return job, nil
	}

	// Second-level replay: the durable store. A hit here means some past
	// run — possibly in a previous process — committed this exact key;
	// the WAL bytes are the verdict. Promote into the memory cache so
	// the next replay skips the disk.
	if s.cfg.Store != nil {
		verdict, ok, err := s.cfg.Store.Get(res.key)
		switch {
		case err != nil:
			// A read failure downgrades to a lab run, it never fails the
			// submission: the store is an accelerator, not a dependency.
			s.storeErrors++
		case ok:
			s.storeHits++
			s.cache.Put(res.key, verdict)
			job := s.newJobLocked(res)
			job.publish(verdict, true)
			s.retireLocked(job.ID)
			return job, nil
		}
	}

	// Coalesce: an identical submission already queued or running absorbs
	// this one — same job, one run, shared verdict bytes.
	if job, ok := s.inflight[res.key]; ok {
		s.coalesced++
		return job, nil
	}

	job := s.newJobLocked(res)
	select {
	case s.queue <- job:
		s.inflight[res.key] = job
		return job, nil
	default:
		// Backpressure: refuse rather than block the caller (the HTTP
		// listener turns this into 429 + Retry-After).
		s.rejected++
		delete(s.jobs, job.ID)
		return nil, ErrQueueFull
	}
}

func (s *Server) resolve(req SubmitRequest) (resolved, error) {
	if s.cfg.Resolver != nil {
		spec, key, err := s.cfg.Resolver(req)
		if err != nil {
			return resolved{}, err
		}
		if spec != nil {
			profile := DefaultProfile
			if req.Profile != "" {
				profile = winsim.ProfileName(req.Profile)
				if !winsim.ValidProfile(profile) {
					return resolved{}, fmt.Errorf("unknown profile %q", req.Profile)
				}
			}
			seed := int64(defaultSeed)
			if req.Seed != nil {
				seed = *req.Seed
			}
			return resolved{
				specimen: spec,
				profile:  profile,
				seed:     seed,
				key:      fmt.Sprintf("%s|%s|%d", key, profile, seed),
			}, nil
		}
		// A nil specimen without error means "not mine": fall through to
		// the built-in resolver.
	}
	return resolveRequest(req)
}

// newJobLocked allocates and registers a job; the caller holds s.mu.
func (s *Server) newJobLocked(res resolved) *Job {
	s.nextID++
	job := &Job{
		ID:      fmt.Sprintf("j%08d", s.nextID),
		Key:     res.key,
		spec:    res,
		state:   JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	s.jobs[job.ID] = job
	return job
}

// jobRetention bounds the finished-job registry. Recent enough that any
// reasonable poller finds its verdict, small enough that the daemon's
// memory is dominated by the verdict cache, not job bookkeeping.
const jobRetention = 8192

// retireLocked records a completed job in the retention FIFO and forgets
// the oldest entries beyond the bound. The caller holds s.mu.
func (s *Server) retireLocked(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > jobRetention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Lookup returns a job by ID.
func (s *Server) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// worker drains the queue. Each worker owns its own labs, one per machine
// profile, so the template-snapshot pool and trace recorders are never
// shared across goroutines; the lab seed is irrelevant because runs go
// through RunSampleSeeded.
func (s *Server) worker() {
	defer s.workers.Done()
	labs := make(map[winsim.ProfileName]*analysis.Lab)
	for job := range s.queue {
		lab, ok := labs[job.spec.profile]
		if !ok {
			lab = &analysis.Lab{
				Profile: job.spec.profile,
				Config:  core.RecommendedConfig(string(job.spec.profile)),
			}
			labs[job.spec.profile] = lab
		}
		s.runJob(lab, job)
	}
}

// runJob executes one job and completes it. The lab already contains every
// in-run failure (runContained recovers panics into SampleResult.Err); the
// enclosing recover is the worker's own last line — it converts a defect in
// the service layer itself (marshalling, a lab bug) into a VerdictError
// result instead of a dead worker and an orphaned job.
func (s *Server) runJob(lab *analysis.Lab, job *Job) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Skip completion if the job already published (the panic came from
		// after complete); closing Done twice would itself panic.
		job.mu.Lock()
		alreadyDone := job.state == JobDone
		job.mu.Unlock()
		if alreadyDone {
			return
		}
		res := analysis.SampleResult{
			Specimen:        job.spec.specimen,
			Err:             fmt.Errorf("service: job %s panicked outside the lab: %v", job.ID, r),
			Stack:           string(debug.Stack()),
			Verdict:         analysis.Verdict{Category: analysis.VerdictError},
			Attempts:        1,
			RecoveredPanics: 1,
		}
		s.complete(job, mustMarshal(res), res)
	}()

	job.mu.Lock()
	job.state = JobRunning
	job.mu.Unlock()

	res := lab.RunSampleSeeded(job.spec.specimen, job.spec.seed)
	s.complete(job, mustMarshal(res), res)
}

// mustMarshal renders the canonical verdict JSON, degrading to a minimal
// error document if marshalling itself fails (VerdictDoc is plain data, so
// in practice it never does).
func mustMarshal(res analysis.SampleResult) []byte {
	verdict, err := res.MarshalVerdict()
	if err != nil {
		id := ""
		if res.Specimen != nil {
			id = res.Specimen.ID
		}
		verdict = []byte(fmt.Sprintf(`{"specimen":%q,"category":"error","error":%q}`, id, err.Error()))
	}
	return verdict
}

// complete publishes the verdict: resolves the coalescing entry, fills the
// cache (clean runs only — a failed run should be retryable, not pinned),
// updates the aggregate report, and wakes waiters.
func (s *Server) complete(job *Job, verdict []byte, res analysis.SampleResult) {
	// Commit to the WAL before waking waiters: once any client has seen
	// this verdict, a restarted daemon can serve it again. The blocking
	// happens outside s.mu — concurrent workers pile onto the committer's
	// next group commit instead of serializing behind the server lock.
	var commitErr error
	if res.Err == nil && s.cfg.Store != nil {
		if s.commitc != nil {
			commitErr = s.commit(job.Key, verdict)
		} else {
			commitErr = s.cfg.Store.Put(job.Key, verdict)
		}
	}

	s.mu.Lock()
	s.completed++
	s.labRuns++
	s.recoveredPanics += uint64(res.RecoveredPanics)
	s.virtual += res.Raw.VirtualTime + res.Protected.VirtualTime
	if res.Err != nil {
		s.verdictErrors++
	} else {
		s.cache.Put(job.Key, verdict)
		if commitErr != nil {
			s.storeErrors++
		}
	}
	delete(s.inflight, job.Key)
	s.retireLocked(job.ID)
	s.mu.Unlock()

	job.publish(verdict, false)
}

// Shutdown drains gracefully: new submissions are refused immediately,
// queued and running jobs complete, and the call returns when the workers
// exit or the context expires (whichever comes first).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	// Submissions synchronize on s.mu, so nobody can be mid-send here:
	// closing the queue is safe and lets workers drain the backlog.
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		// Workers are the only commit producers, so the committer's
		// channel can close only after they exit; it then flushes any
		// queued batch before stopping.
		if s.commitc != nil {
			close(s.commitc)
		}
		s.committer.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain deadline exceeded: %w", ctx.Err())
	}
}

// Report aggregates the serving state into the lab's sweep-health shape:
// completed runs, error counts, recovered panics, wall and virtual time.
// Throughput() on the result is machine executions per second since Start.
func (s *Server) Report() analysis.RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return analysis.RunReport{
		Samples:         int(s.labRuns),
		VerdictErrors:   int(s.verdictErrors),
		RecoveredPanics: int(s.recoveredPanics),
		Workers:         s.cfg.Workers,
		Wall:            time.Since(s.started),
		Virtual:         s.virtual,
	}
}

// Stats is the /statusz snapshot.
type Stats struct {
	Uptime     time.Duration `json:"uptime_ns"`
	Workers    int           `json:"workers"`
	QueueDepth int           `json:"queue_depth"`
	QueueCap   int           `json:"queue_cap"`
	Submitted  uint64        `json:"submitted"`
	Completed  uint64        `json:"completed"`
	Coalesced  uint64        `json:"coalesced"`
	Rejected   uint64        `json:"rejected"`
	LabRuns    uint64        `json:"lab_runs"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheSize      int     `json:"cache_size"`
	CacheHitRate   float64 `json:"cache_hit_rate"`

	// Durable-store counters (zero when persistence is off).
	StoreKeys   int    `json:"store_keys"`
	StoreHits   uint64 `json:"store_hits"`
	StoreErrors uint64 `json:"store_errors"`

	// Deterrence-tier counters for the streaming /v1/monitor endpoint.
	MonitorRuns     uint64 `json:"monitor_runs"`
	MonitorDeterred uint64 `json:"monitor_deterred"`
	MonitorRejected uint64 `json:"monitor_rejected"`

	Report      analysis.RunReport `json:"report"`
	ThroughputS float64            `json:"throughput_exec_per_s"`
}

// Snapshot collects the current serving statistics.
func (s *Server) Snapshot() Stats {
	report := s.Report()
	var storeKeys int
	if s.cfg.Store != nil {
		storeKeys = s.cfg.Store.Len()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hits, misses, evictions, size := s.cache.Stats()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return Stats{
		Uptime:          time.Since(s.started),
		Workers:         s.cfg.Workers,
		QueueDepth:      len(s.queue),
		QueueCap:        s.cfg.QueueDepth,
		Submitted:       s.submitted,
		Completed:       s.completed,
		Coalesced:       s.coalesced,
		Rejected:        s.rejected,
		LabRuns:         s.labRuns,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  evictions,
		CacheSize:       size,
		CacheHitRate:    rate,
		StoreKeys:       storeKeys,
		StoreHits:       s.storeHits,
		StoreErrors:     s.storeErrors,
		MonitorRuns:     s.monitorRuns,
		MonitorDeterred: s.monitorDeterred,
		MonitorRejected: s.monitorRejected,
		Report:          report,
		ThroughputS:     report.Throughput(),
	}
}

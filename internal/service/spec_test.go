package service

import (
	"strings"
	"testing"

	"scarecrow/internal/winsim"
)

func TestResolveCatalogRequest(t *testing.T) {
	r, err := resolveRequest(SubmitRequest{Specimen: "wannacry", Seed: seedPtr(9)})
	if err != nil {
		t.Fatalf("resolve wannacry: %v", err)
	}
	if r.specimen == nil || r.specimen.Family != "WannaCry" {
		t.Fatalf("specimen = %+v, want WannaCry", r.specimen)
	}
	if r.profile != DefaultProfile {
		t.Errorf("profile = %s, want default %s", r.profile, DefaultProfile)
	}
	if r.seed != 9 {
		t.Errorf("seed = %d, want 9", r.seed)
	}
	if want := "cat:wannacry|baremetal-sandbox|9"; r.key != want {
		t.Errorf("key = %q, want %q", r.key, want)
	}
}

func TestResolveRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		req  SubmitRequest
		want string
	}{
		{"empty", SubmitRequest{}, "must name a specimen"},
		{"unknown specimen", SubmitRequest{Specimen: "bogus"}, "unknown"},
		{"unknown profile", SubmitRequest{Specimen: "wannacry", Profile: "vax-cluster"}, "unknown profile"},
		{"both specimen and recipe", SubmitRequest{Specimen: "wannacry", Recipe: &Recipe{Checks: []string{"debugger-api"}}}, "mutually exclusive"},
		{"empty recipe", SubmitRequest{Recipe: &Recipe{}}, "at least one check"},
		{"unknown check", SubmitRequest{Recipe: &Recipe{Checks: []string{"crystal-ball"}}}, "unknown recipe check"},
		{"unknown reaction", SubmitRequest{Recipe: &Recipe{Checks: []string{"debugger-api"}, React: "explode"}}, "unknown recipe reaction"},
		{"unknown payload", SubmitRequest{Recipe: &Recipe{Checks: []string{"debugger-api"}, Payload: "mining"}}, "unknown recipe payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := resolveRequest(tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("resolveRequest(%+v): err = %v, want containing %q", tc.req, err, tc.want)
			}
		})
	}
}

// Every profile the simulator exposes is accepted by the validator, and the
// default is among them.
func TestAllProfilesResolvable(t *testing.T) {
	sawDefault := false
	for _, p := range winsim.Profiles() {
		r, err := resolveRequest(SubmitRequest{Specimen: "wannacry", Profile: string(p)})
		if err != nil {
			t.Errorf("profile %s rejected: %v", p, err)
			continue
		}
		if r.profile != p {
			t.Errorf("profile %s resolved to %s", p, r.profile)
		}
		if p == DefaultProfile {
			sawDefault = true
		}
	}
	if !sawDefault {
		t.Errorf("default profile %s not in winsim.Profiles()", DefaultProfile)
	}
}

// The recipe's canonical form — and therefore its cache key and derived
// specimen ID — is a pure function of the recipe, order-sensitive in
// checks (order decides which probe fires first).
func TestRecipeCanonicalKey(t *testing.T) {
	rec := Recipe{Checks: []string{"debugger-api", "vbox-registry"}, React: "sleep", Payload: "beacon"}
	s1, canon1, err := buildRecipe(rec)
	if err != nil {
		t.Fatalf("buildRecipe: %v", err)
	}
	s2, canon2, err := buildRecipe(rec)
	if err != nil {
		t.Fatalf("buildRecipe (repeat): %v", err)
	}
	if canon1 != canon2 || s1.ID != s2.ID {
		t.Fatalf("recipe canonicalization unstable: %q/%s vs %q/%s", canon1, s1.ID, canon2, s2.ID)
	}
	if s1 == s2 {
		t.Fatalf("buildRecipe returned a shared specimen; each job needs its own")
	}
	if want := "checks=debugger-api+vbox-registry;react=sleep;payload=beacon"; canon1 != want {
		t.Errorf("canon = %q, want %q", canon1, want)
	}

	flipped := Recipe{Checks: []string{"vbox-registry", "debugger-api"}, React: "sleep", Payload: "beacon"}
	_, canonFlipped, err := buildRecipe(flipped)
	if err != nil {
		t.Fatalf("buildRecipe (flipped): %v", err)
	}
	if canonFlipped == canon1 {
		t.Errorf("check order lost in canonical form: %q", canonFlipped)
	}
}

// Defaults: react=terminate, payload=persist, profile and seed filled in.
func TestRecipeDefaults(t *testing.T) {
	r, err := resolveRequest(SubmitRequest{Recipe: &Recipe{Checks: []string{"hook-scan"}}})
	if err != nil {
		t.Fatalf("resolve minimal recipe: %v", err)
	}
	if !strings.Contains(r.key, "react=terminate") || !strings.Contains(r.key, "payload=persist") {
		t.Errorf("key %q missing defaulted react/payload", r.key)
	}
	if r.seed != defaultSeed {
		t.Errorf("seed = %d, want default %d", r.seed, defaultSeed)
	}
}

// Every advertised wire name actually constructs.
func TestRecipeTablesComplete(t *testing.T) {
	for _, name := range RecipeChecks() {
		recipeChecks[name]() // must construct without panicking
	}
	for _, name := range RecipeReactions() {
		if recipeReactions[name]() == nil {
			t.Errorf("reaction %q constructs nil", name)
		}
	}
	for _, name := range RecipePayloads() {
		if recipePayloads[name]("rcptest") == nil {
			t.Errorf("payload %q constructs nil", name)
		}
	}
}

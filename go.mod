module scarecrow

go 1.22

package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"scarecrow/internal/lint"
)

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want %d, nil", len(all), err, len(lint.Analyzers()))
	}
	subset, err := selectAnalyzers("statuscheck, virtualclock")
	if err != nil || len(subset) != 2 {
		t.Fatalf("selectAnalyzers subset = %v, err %v; want 2 analyzers", subset, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("selectAnalyzers(nosuch) succeeded, want error")
	}
}

// TestRunOnOwnModule runs the full suite over the repository the test is
// part of; the tree must be clean (this is the same invariant CI enforces
// via `go run ./cmd/scarelint ./...`).
func TestRunOnOwnModule(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{root + "/..."}); code != 0 {
		t.Fatalf("scarelint ./... = exit %d, want 0 (tree must be lint-clean)", code)
	}
}

func TestJSONAndSarifMutuallyExclusive(t *testing.T) {
	if code := run([]string{"-json", "-sarif"}); code != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", code)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// wrote.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	fn()
	w.Close()
	return <-done
}

// TestJSONCleanOnOwnModule is the acceptance invariant verbatim:
// `scarelint -json ./...` exits 0 on this repository and emits a valid,
// empty scarelint/2 report.
func TestJSONCleanOnOwnModule(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var code int
	out := captureStdout(t, func() {
		code = run([]string{"-json", root + "/..."})
	})
	if code != 0 {
		t.Fatalf("scarelint -json ./... = exit %d, want 0\n%s", code, out)
	}
	var report lint.JSONReport
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, out)
	}
	if report.Version != "scarelint/2" {
		t.Errorf("report version = %q, want scarelint/2", report.Version)
	}
	if len(report.Findings) != 0 {
		t.Errorf("clean tree reported %d findings: %+v", len(report.Findings), report.Findings)
	}
}

// The shrink-only contract: removing entries passes, adding fails.
func TestBaselineShrinkCheck(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	entry := `{"analyzer": "maporder", "file": "a.go", "message": "m"}`
	extra := `{"analyzer": "maporder", "file": "b.go", "message": "n"}`
	old := write("old.json", `{"version": 1, "findings": [`+entry+`]}`)
	same := write("same.json", `{"version": 1, "findings": [`+entry+`]}`)
	empty := write("empty.json", `{"version": 1, "findings": []}`)
	grown := write("grown.json", `{"version": 1, "findings": [`+entry+`, `+extra+`]}`)

	if code := run([]string{"-baseline-shrink-check", old, "-baseline", same}); code != 0 {
		t.Errorf("unchanged baseline = exit %d, want 0", code)
	}
	if code := run([]string{"-baseline-shrink-check", old, "-baseline", empty}); code != 0 {
		t.Errorf("shrunk baseline = exit %d, want 0", code)
	}
	if code := run([]string{"-baseline-shrink-check", old, "-baseline", grown}); code != 1 {
		t.Errorf("grown baseline = exit %d, want 1", code)
	}
}

// TestWriteBaselineRegeneratesEmpty: on a clean tree, -write-baseline
// produces the same empty ledger that is checked in.
func TestWriteBaselineRegeneratesEmpty(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(t.TempDir(), "baseline.json")
	if code := run([]string{"-baseline", tmp, "-write-baseline", root + "/..."}); code != 0 {
		t.Fatalf("-write-baseline = exit %d, want 0", code)
	}
	b, err := lint.LoadBaseline(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("regenerated baseline has %d findings, want 0: %+v", len(b.Findings), b.Findings)
	}
}

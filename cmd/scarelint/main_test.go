package main

import (
	"testing"

	"scarecrow/internal/lint"
)

func TestListExitsClean(t *testing.T) {
	if code := run([]string{"-list"}); code != 0 {
		t.Fatalf("run(-list) = %d, want 0", code)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(lint.Analyzers()) {
		t.Fatalf("selectAnalyzers(\"\") = %d analyzers, err %v; want %d, nil", len(all), err, len(lint.Analyzers()))
	}
	subset, err := selectAnalyzers("statuscheck, virtualclock")
	if err != nil || len(subset) != 2 {
		t.Fatalf("selectAnalyzers subset = %v, err %v; want 2 analyzers", subset, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("selectAnalyzers(nosuch) succeeded, want error")
	}
}

// TestRunOnOwnModule runs the full suite over the repository the test is
// part of; the tree must be clean (this is the same invariant CI enforces
// via `go run ./cmd/scarelint ./...`).
func TestRunOnOwnModule(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if code := run([]string{root + "/..."}); code != 0 {
		t.Fatalf("scarelint ./... = exit %d, want 0 (tree must be lint-clean)", code)
	}
}

// Command scarelint runs scarecrow's static-analysis suite (internal/lint)
// over the repository: a multichecker in the style of go vet whose
// analyzers enforce the simulation's consistency invariants at build time.
//
// Usage:
//
//	scarelint [-analyzers statuscheck,apireach,...] [-json|-sarif] [-fix]
//	          [-baseline file] [-write-baseline] [packages]
//
// Packages default to ./... relative to the working directory. Output is
// human-readable text by default; -json emits a stable JSON report and
// -sarif a SARIF 2.1.0 log (both to stdout, for CI artifacts).
//
// -fix applies every suggested fix (see the statusfix analyzer) to the
// working tree, gofmt-clean and idempotently. A baseline file
// (.scarelint-baseline.json at the module root, or -baseline) accepts
// legacy findings: baselined findings are reported but do not gate;
// -write-baseline regenerates the file from the current findings.
//
// Exit codes: 0 clean (no non-baselined error-severity findings),
// 1 findings, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scarecrow/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("scarelint", flag.ExitOnError)
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	fix := fs.Bool("fix", false, "apply suggested fixes to the working tree")
	baselinePath := fs.String("baseline", "", "baseline file of accepted findings (default: <module>/"+lint.BaselineFile+" when present)")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the baseline file from the current findings and exit")
	shrinkFrom := fs.String("baseline-shrink-check", "", "compare the baseline against a previous version of it and fail if it grew; no analysis is run (CI)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: scarelint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s [%s] %s\n", a.Name, a.Severity, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s [%s] %s\n", a.Name, a.Severity, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "scarelint: -json and -sarif are mutually exclusive")
		return 2
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	if *shrinkFrom != "" {
		bpath := *baselinePath
		if bpath == "" {
			bpath = filepath.Join(moduleRoot, lint.BaselineFile)
		}
		return shrinkCheck(*shrinkFrom, bpath)
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	paths, err := loader.Expand(patterns, cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "scarelint: no packages matched")
		return 2
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}

	// Baseline: accepted legacy findings are reported but do not gate.
	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(moduleRoot, lint.BaselineFile)
	}
	if *writeBaseline {
		if err := lint.WriteBaseline(bpath, diags, moduleRoot); err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "scarelint: wrote %s\n", bpath)
		return 0
	}
	baseline, err := lint.LoadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	stale := baseline.Apply(diags, moduleRoot)

	if *fix {
		changed, skipped, err := lint.ApplyFixes(loader.Fset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
		for _, f := range changed {
			rel := f
			if r, err := filepath.Rel(cwd, f); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			fmt.Printf("fixed %s\n", rel)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "scarelint: %d fix(es) skipped (conflicting edits); re-run -fix\n", skipped)
		}
		// Findings with no mechanical rewrite still gate below; findings
		// whose fix was just applied no longer exist in the tree.
		diags = unfixedDiagnostics(diags)
	}

	switch {
	case *jsonOut:
		if err := lint.EmitJSON(os.Stdout, diags, moduleRoot); err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
	case *sarifOut:
		if err := lint.EmitSARIF(os.Stdout, diags, analyzers, moduleRoot); err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			pos := d.Pos
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			suffix := ""
			if d.Baselined {
				suffix = " (baselined)"
			}
			fmt.Printf("%s: %s: %s: %s%s\n", pos, d.Severity, d.Analyzer, d.Message, suffix)
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "scarelint: stale baseline entry (remove it): %s %s: %s\n", e.Analyzer, e.File, e.Message)
	}

	gating := 0
	for _, d := range diags {
		if d.Severity == lint.SeverityError && !d.Baselined {
			gating++
		}
	}
	if gating > 0 {
		fmt.Fprintf(os.Stderr, "scarelint: %d error finding(s) in %d package(s)\n", gating, len(pkgs))
		return 1
	}
	return 0
}

// shrinkCheck enforces the baseline's shrink-only contract: every entry
// in the current baseline must already exist in the old one. New debt
// cannot be baselined in a PR — it must be fixed.
func shrinkCheck(oldPath, newPath string) int {
	oldB, err := lint.LoadBaseline(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	newB, err := lint.LoadBaseline(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	have := make(map[lint.BaselineEntry]bool, len(oldB.Findings))
	for _, e := range oldB.Findings {
		have[e] = true
	}
	grew := 0
	for _, e := range newB.Findings {
		if !have[e] {
			fmt.Fprintf(os.Stderr, "scarelint: baseline grew: %s %s: %s\n", e.Analyzer, e.File, e.Message)
			grew++
		}
	}
	if grew > 0 {
		fmt.Fprintf(os.Stderr, "scarelint: the baseline is shrink-only; fix the %d new finding(s) instead of baselining them\n", grew)
		return 1
	}
	fmt.Fprintf(os.Stderr, "scarelint: baseline ok (%d -> %d entries)\n", len(oldB.Findings), len(newB.Findings))
	return 0
}

// unfixedDiagnostics drops findings that carried a fix (now applied) and
// the paired analyzer findings those fixes resolve: a statusfix rewrite
// at a position also clears the statuscheck/maporder finding anchored
// there.
func unfixedDiagnostics(diags []lint.Diagnostic) []lint.Diagnostic {
	fixedAt := make(map[string]bool)
	for _, d := range diags {
		if d.Fix != nil {
			fixedAt[fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)] = true
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if fixedAt[fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column)] {
			continue
		}
		out = append(out, d)
	}
	return out
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run scarelint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

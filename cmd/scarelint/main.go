// Command scarelint runs scarecrow's static-analysis suite (internal/lint)
// over the repository: a multichecker in the style of go vet whose
// analyzers enforce the simulation's consistency invariants at build time.
//
// Usage:
//
//	scarelint [-analyzers statuscheck,hookcatalog,...] [packages]
//
// Packages default to ./... relative to the working directory. Exit codes:
// 0 clean, 1 findings reported, 2 load or usage failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scarecrow/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("scarelint", flag.ExitOnError)
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: scarelint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	moduleRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	paths, err := loader.Expand(patterns, cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "scarelint: no packages matched")
		return 2
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarelint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarelint:", err)
		return 2
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scarelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run scarelint -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

package main

import (
	"strings"
	"testing"
)

// The §II-C smoke check: the crawl inventories nonzero unique resources,
// prints each class, and reports the deception-database growth.
func TestRunCrawl(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 1, 3); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"unique files:",
		"unique processes:",
		"unique registry entries:",
		"sandbox config:",
		"deception DB files:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "unique files:            0") {
		t.Errorf("crawl found zero unique files:\n%s", got)
	}
}

// Determinism: same seed, same inventory.
func TestRunCrawlDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run(&a, 7, 2); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(&b, 7, 2); err != nil {
		t.Fatalf("second run: %v", err)
	}
	// The first line carries wall-clock timing; compare everything after.
	trim := func(s string) string {
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			return s[i+1:]
		}
		return s
	}
	if trim(a.String()) != trim(b.String()) {
		t.Errorf("same seed produced different inventories:\n%s\nvs\n%s", a.String(), b.String())
	}
}

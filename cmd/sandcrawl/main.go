// Command sandcrawl runs the §II-C public-sandbox crawler: it inventories
// the VirusTotal and Malwr sandbox profiles, diffs them against the clean
// bare-metal reference, and prints the unique resources that extend
// Scarecrow's deception database.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/crawler"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	samples := flag.Int("show", 5, "how many example resources to print per class")
	flag.Parse()

	if err := run(os.Stdout, *seed, *samples); err != nil {
		fmt.Fprintln(os.Stderr, "sandcrawl:", err)
		os.Exit(1)
	}
}

// run crawls the public-sandbox profiles, prints the inventory to w, and
// extends a fresh deception database with the findings.
func run(w io.Writer, seed int64, samples int) error {
	start := time.Now()
	r := crawler.CrawlPublicSandboxes(seed)
	fmt.Fprintf(w, "crawl finished in %.1fs\n", time.Since(start).Seconds())
	fmt.Fprintf(w, "unique files:            %d\n", len(r.Files))
	fmt.Fprintf(w, "unique processes:        %d\n", len(r.Processes))
	fmt.Fprintf(w, "unique registry entries: %d\n", len(r.RegistryKeys))
	if len(r.Files) == 0 && len(r.Processes) == 0 && len(r.RegistryKeys) == 0 {
		return fmt.Errorf("crawl found no unique resources; the sandbox profiles cannot be indistinguishable from clean bare metal")
	}

	show := func(label string, items []string) {
		n := samples
		if n > len(items) {
			n = len(items)
		}
		fmt.Fprintf(w, "%s (first %d):\n", label, n)
		for _, item := range items[:n] {
			fmt.Fprintln(w, " ", item)
		}
	}
	show("files", r.Files)
	show("processes", r.Processes)
	show("registry", r.RegistryKeys)

	for _, cfg := range r.SandboxConfigs {
		fmt.Fprintf(w, "sandbox config: disk=%dGB ram=%dGB cores=%d host=%s user=%s\n",
			cfg.DiskTotalBytes>>30, cfg.RAMBytes>>30, cfg.NumCores, cfg.ComputerName, cfg.UserName)
	}

	db := core.NewDB()
	before := db.Counts()
	r.ExtendDB(db)
	after := db.Counts()
	fmt.Fprintf(w, "deception DB files: %d -> %d, processes: %d -> %d, registry: %d -> %d\n",
		before[core.CategoryFile], after[core.CategoryFile],
		before[core.CategoryProcess], after[core.CategoryProcess],
		before[core.CategoryRegistry], after[core.CategoryRegistry])
	return nil
}

// Command sandcrawl runs the §II-C public-sandbox crawler: it inventories
// the VirusTotal and Malwr sandbox profiles, diffs them against the clean
// bare-metal reference, and prints the unique resources that extend
// Scarecrow's deception database.
package main

import (
	"flag"
	"fmt"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/crawler"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	samples := flag.Int("show", 5, "how many example resources to print per class")
	flag.Parse()

	start := time.Now()
	r := crawler.CrawlPublicSandboxes(*seed)
	fmt.Printf("crawl finished in %.1fs\n", time.Since(start).Seconds())
	fmt.Printf("unique files:            %d\n", len(r.Files))
	fmt.Printf("unique processes:        %d\n", len(r.Processes))
	fmt.Printf("unique registry entries: %d\n", len(r.RegistryKeys))

	show := func(label string, items []string) {
		n := *samples
		if n > len(items) {
			n = len(items)
		}
		fmt.Printf("%s (first %d):\n", label, n)
		for _, item := range items[:n] {
			fmt.Println(" ", item)
		}
	}
	show("files", r.Files)
	show("processes", r.Processes)
	show("registry", r.RegistryKeys)

	for _, cfg := range r.SandboxConfigs {
		fmt.Printf("sandbox config: disk=%dGB ram=%dGB cores=%d host=%s user=%s\n",
			cfg.DiskTotalBytes>>30, cfg.RAMBytes>>30, cfg.NumCores, cfg.ComputerName, cfg.UserName)
	}

	db := core.NewDB()
	before := db.Counts()
	r.ExtendDB(db)
	after := db.Counts()
	fmt.Printf("deception DB files: %d -> %d, processes: %d -> %d, registry: %d -> %d\n",
		before[core.CategoryFile], after[core.CategoryFile],
		before[core.CategoryProcess], after[core.CategoryProcess],
		before[core.CategoryRegistry], after[core.CategoryRegistry])
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
)

// startBackend runs one in-process scarecrowd-shaped backend and
// returns its base URL.
func startBackend(t *testing.T) string {
	t.Helper()
	srv := service.NewServer(service.Config{Workers: 2, QueueDepth: 32, CacheSize: 256})
	srv.Start()
	eng := campaign.NewEngine(srv, campaign.Options{})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// bootFront starts run() in a goroutine and waits for the listen
// address. The returned channel carries run's exit status.
func bootFront(t *testing.T, opts options) (string, chan error) {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Drain == 0 {
		opts.Drain = 30 * time.Second
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(opts, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("front exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatalf("front never became ready")
	}
	return "", nil
}

// drainFront SIGTERMs the test process and waits for run to return.
func drainFront(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("front did not drain after SIGTERM")
	}
}

// The front end to end over two real backends: health, a verdict and its
// byte-identical cached replay, a fanned-out campaign streamed to the
// summary, then a clean SIGTERM drain.
func TestFrontServesAndDrains(t *testing.T) {
	backends := startBackend(t) + " , " + startBackend(t)
	base, done := bootFront(t, options{Backends: backends, HealthInterval: 50 * time.Millisecond})

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(hz, []byte("ok")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, hz)
	}

	body := []byte(`{"specimen":"kasidet","seed":3}`)
	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	v1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: status %d, body %s", resp.StatusCode, v1)
	}

	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict replay: %v", err)
	}
	v2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Errorf("replay not served from the owning backend's cache")
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("replay bytes differ through the front:\n%s\nvs\n%s", v1, v2)
	}

	resp, err = http.Post(base+"/v1/campaign", "application/json",
		strings.NewReader(`{"specimens":["kasidet","locky"],"seeds":[1,2]}`))
	if err != nil {
		t.Fatalf("campaign launch: %v", err)
	}
	var launched struct {
		ID     string `json:"id"`
		Total  int    `json:"total"`
		Events string `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		t.Fatalf("decoding launch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || launched.Total != 4 {
		t.Fatalf("launch: status %d, %+v", resp.StatusCode, launched)
	}

	stream, err := http.Get(base + launched.Events)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer stream.Body.Close()
	verdicts, sawSummary := 0, false
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		switch {
		case strings.HasPrefix(sc.Text(), "event: verdict"):
			verdicts++
		case strings.HasPrefix(sc.Text(), "event: summary"):
			sawSummary = true
		}
	}
	if verdicts != 4 || !sawSummary {
		t.Fatalf("merged stream carried %d verdicts (want 4), summary=%v", verdicts, sawSummary)
	}

	drainFront(t, done)
}

func TestRunRejectsNoBackends(t *testing.T) {
	err := run(options{Addr: "127.0.0.1:0", Backends: " , ", Drain: time.Second}, nil)
	if err == nil || !strings.Contains(err.Error(), "no backends") {
		t.Fatalf("no backends: err = %v, want config failure", err)
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	err := run(options{Addr: "256.256.256.256:99999", Backends: "http://127.0.0.1:1", Drain: time.Second}, nil)
	if err == nil || !strings.Contains(err.Error(), "listening") {
		t.Fatalf("bad addr: err = %v, want listen failure", err)
	}
}

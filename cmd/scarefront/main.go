// Command scarefront scales the verdict service horizontally: one HTTP
// front over N scarecrowd backends. Each verdict key — the canonical
// (specimen, profile, seed) triple — is consistent-hashed to one owning
// backend, so every backend's cache, WAL, and coalescing window keeps
// working exactly as it does standalone, and replays stay byte-identical
// through the front.
//
//	scarefront -addr :8080 -backends http://10.0.0.1:8081,http://10.0.0.2:8081
//
//	curl -s localhost:8080/v1/verdict -d '{"specimen":"kasidet"}'
//	curl -s localhost:8080/v1/campaign -d '{"specimens":["kasidet","locky"],"seeds":[1,2,3]}'
//	curl -sN localhost:8080/v1/campaign/f00000001/events
//	curl -s localhost:8080/statusz
//
// Campaign manifests fan out as per-backend sub-campaigns; the front
// merges the backends' SSE streams into one resumable stream with its
// own monotonic sequence. Backends that stop answering are marked
// degraded — their shard of the key space parks with 503 until they
// recover — rather than failing the whole front. A backend that dies
// mid-campaign and restarts resumes its sub-campaign from its WAL
// checkpoint; the front re-adopts it by tag and the sweep completes
// with no lost or duplicated cells.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scarecrow/internal/front"
)

// options collects the front's flag-configurable knobs.
type options struct {
	Addr           string
	Backends       string
	Vnodes         int
	HealthInterval time.Duration
	Drain          time.Duration
	MaxJobs        int
}

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", ":8080", "listen address")
	flag.StringVar(&opts.Backends, "backends", "", "comma-separated scarecrowd base URLs (required)")
	flag.IntVar(&opts.Vnodes, "vnodes", 0, "hash-ring virtual nodes per backend (0 = 64)")
	flag.DurationVar(&opts.HealthInterval, "health-interval", 2*time.Second, "backend health-probe period")
	flag.DurationVar(&opts.Drain, "drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.IntVar(&opts.MaxJobs, "max-jobs", 0, "campaign cell cap per manifest (0 = 16384)")
	flag.Parse()
	if err := run(opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "scarefront:", err)
		os.Exit(1)
	}
}

// run starts the front and blocks until a termination signal stops it.
// ready, when non-nil, receives the bound listen address once the
// socket is open (tests bind :0 and need the resolved port).
func run(opts options, ready chan<- string) error {
	var backends []string
	for _, b := range strings.Split(opts.Backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}
	f, err := front.New(front.Options{
		Backends:       backends,
		Vnodes:         opts.Vnodes,
		HealthInterval: opts.HealthInterval,
		MaxJobs:        opts.MaxJobs,
	})
	if err != nil {
		return fmt.Errorf("building front: %w", err)
	}
	f.Start()
	defer f.Close()

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", opts.Addr, err)
	}
	httpSrv := &http.Server{Handler: f.Handler()}

	fmt.Printf("scarefront: serving on %s over %d backends\n", ln.Addr(), len(backends))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		fmt.Printf("scarefront: %v, draining (deadline %s)\n", s, opts.Drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scarefront: http shutdown: %v\n", err)
	}
	// The deferred Close stops follower goroutines; backends keep their
	// own sub-campaigns (and checkpoints), so a restarted front re-adopts
	// them by tag rather than losing the sweep.
	st := f.Status()
	fmt.Printf("scarefront: drained. %d/%d backends healthy, %d campaigns\n", st.Healthy, len(st.Backends), st.Campaigns)
	return nil
}

//go:build race

package main

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately defeats sync.Pool reuse — the pooled
// stages' allocation budgets are unmeasurable in that mode.
const raceEnabled = true

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
	"scarecrow/internal/store"
)

// The bench loop against an in-process scarecrowd: all requests succeed,
// the cycled keys produce cache hits, and the daemon counters line up.
func TestBenchAgainstInProcessService(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 2, QueueDepth: 16, CacheSize: 64})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	summary, err := bench(benchOptions{
		Addr:    ts.URL,
		N:       40,
		C:       4,
		Samples: []string{"kasidet", "wannacry"},
		Seeds:   2,
		Wait:    5 * time.Second,
	})
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if summary.Errors != 0 {
		t.Fatalf("bench reported %d errors", summary.Errors)
	}
	if summary.UniqueKeys != 4 {
		t.Errorf("unique keys = %d, want 4", summary.UniqueKeys)
	}
	// 40 requests over 4 unique keys: at most 4 lab runs, the rest cache
	// hits or coalesced.
	if summary.LabRuns > 4 {
		t.Errorf("lab runs = %d, want <= 4 (caching/coalescing broken)", summary.LabRuns)
	}
	if summary.CacheHitRate == 0 {
		t.Errorf("cache hit rate = 0, want > 0 after %d replays", summary.Requests)
	}
	if summary.VerdictsPerS <= 0 || summary.ExecutionsPerS != 2*summary.VerdictsPerS {
		t.Errorf("throughput accounting wrong: %v verdicts/s, %v executions/s",
			summary.VerdictsPerS, summary.ExecutionsPerS)
	}
	if summary.LatencyMaxMs < summary.LatencyP50Ms {
		t.Errorf("latency percentiles inverted: p50 %v > max %v", summary.LatencyP50Ms, summary.LatencyMaxMs)
	}
	if !strings.Contains(summary.String(), "verdicts/s") {
		t.Errorf("summary rendering missing throughput: %s", summary)
	}
}

func TestBenchUnreachableDaemon(t *testing.T) {
	_, err := bench(benchOptions{
		Addr:    "http://127.0.0.1:1",
		N:       1,
		C:       1,
		Samples: []string{"kasidet"},
		Seeds:   1,
		Wait:    200 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "never became healthy") {
		t.Fatalf("unreachable daemon: err = %v, want health-wait failure", err)
	}
}

func TestBenchNoSamples(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, err := bench(benchOptions{Addr: ts.URL, N: 1, C: 1, Samples: []string{" "}, Seeds: 1, Wait: time.Second})
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("empty sample list: err = %v, want no-samples failure", err)
	}
}

// The -campaign path against an in-process daemon with a real store: the
// cold sweep pays lab runs, the warm sweep replays from cache/WAL, and
// the speedup is measurable.
func TestBenchCampaignColdWarm(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	srv := service.NewServer(service.Config{Workers: 4, QueueDepth: 32, CacheSize: 256, Store: st})
	srv.Start()
	eng := campaign.NewEngine(srv, campaign.Options{})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	report, err := benchCampaign(campaignOptions{Addr: ts.URL, Seeds: 1, Quota: 8, Wait: 5 * time.Second})
	if err != nil {
		t.Fatalf("benchCampaign: %v", err)
	}
	specimens := len(sweepSpecimens())
	if report.Jobs != specimens {
		t.Fatalf("jobs = %d, want %d (one per specimen)", report.Jobs, specimens)
	}
	if report.Cold.Completed != specimens || report.Warm.Completed != specimens {
		t.Fatalf("incomplete sweeps: cold %d warm %d of %d", report.Cold.Completed, report.Warm.Completed, specimens)
	}
	if report.Cold.Errors != 0 || report.Warm.Errors != 0 {
		t.Fatalf("sweep errors: cold %d warm %d", report.Cold.Errors, report.Warm.Errors)
	}
	if report.Warm.CacheHits != specimens {
		t.Fatalf("warm sweep cache hits = %d, want %d (everything replayed)", report.Warm.CacheHits, specimens)
	}
	if report.WarmSpeedup <= 1 {
		t.Fatalf("warm speedup = %.2fx, want > 1x", report.WarmSpeedup)
	}
	if !strings.Contains(report.String(), "warm speedup") {
		t.Fatalf("report rendering missing speedup: %s", report)
	}
	// The honest cold rate counts misses only. This daemon is fresh, so
	// every cold job is a miss and the uncached rate must equal the raw
	// one; the field must never exceed it (cache hits can only inflate
	// the raw number).
	wantUncached := float64(report.Cold.Completed-report.Cold.CacheHits) / report.Cold.WallS
	if diff := report.ColdUncachedVerdictsPerS - wantUncached; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("cold_uncached_verdicts_per_s = %.4f, want %.4f", report.ColdUncachedVerdictsPerS, wantUncached)
	}
	if report.ColdUncachedVerdictsPerS > report.Cold.VerdictsPerS {
		t.Fatalf("uncached rate %.1f/s exceeds the raw cold rate %.1f/s",
			report.ColdUncachedVerdictsPerS, report.Cold.VerdictsPerS)
	}
}

// The -hotpath pipeline end to end, sized small: every stage measured,
// every verdict cold, no errors. The real gate values are exercised by
// make bench-hotpath; here we only check the measurement machinery.
func TestBenchHotpath(t *testing.T) {
	if testing.Short() {
		t.Skip("hotpath micro-benchmarks take a few seconds")
	}
	report, err := benchHotpath(hotpathOptions{N: 16, Workers: 1, Baseline: 90})
	if err != nil {
		t.Fatalf("benchHotpath: %v", err)
	}
	if report.ColdErrors != 0 {
		t.Fatalf("cold pipeline reported %d errors", report.ColdErrors)
	}
	if report.ColdVerdictsPerS <= 0 || report.ColdWallS <= 0 {
		t.Fatalf("cold pipeline unmeasured: %+v", report)
	}
	if report.ColdSpeedup != report.ColdVerdictsPerS/90 {
		t.Fatalf("speedup %.2f does not match rate %.1f over baseline 90", report.ColdSpeedup, report.ColdVerdictsPerS)
	}
	for name, m := range map[string]MicroBench{
		"clone":   report.Clone,
		"record":  report.Record,
		"marshal": report.Marshal,
		"put":     report.StorePutBatched,
	} {
		if m.NsPerOp <= 0 {
			t.Errorf("%s stage unmeasured: %+v", name, m)
		}
	}
	// The stage budgets the gate enforces must hold here too — a failure
	// in this test is the same regression make bench-hotpath would catch.
	// (Not under the race detector, which defeats sync.Pool reuse on
	// purpose and makes the pooled budgets unmeasurable.)
	if raceEnabled {
		return
	}
	if report.Clone.AllocsPerOp > budgetCloneAllocs {
		t.Errorf("clone allocs %.1f over budget %d", report.Clone.AllocsPerOp, budgetCloneAllocs)
	}
	if report.Record.AllocsPerOp > budgetRecordAllocs {
		t.Errorf("record allocs %.2f over budget %.1f", report.Record.AllocsPerOp, budgetRecordAllocs)
	}
	if report.Marshal.AllocsPerOp > budgetMarshalAllocs {
		t.Errorf("marshal allocs %.1f over budget %d", report.Marshal.AllocsPerOp, budgetMarshalAllocs)
	}
	if report.StorePutBatched.AllocsPerOp > budgetPutAllocs {
		t.Errorf("batched put allocs %.2f over budget %d", report.StorePutBatched.AllocsPerOp, budgetPutAllocs)
	}
	if !strings.Contains(report.String(), "cold:") {
		t.Errorf("report rendering missing cold line: %s", report)
	}
}

package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
	"scarecrow/internal/store"
)

// The bench loop against an in-process scarecrowd: all requests succeed,
// the cycled keys produce cache hits, and the daemon counters line up.
func TestBenchAgainstInProcessService(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 2, QueueDepth: 16, CacheSize: 64})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	summary, err := bench(benchOptions{
		Addr:    ts.URL,
		N:       40,
		C:       4,
		Samples: []string{"kasidet", "wannacry"},
		Seeds:   2,
		Wait:    5 * time.Second,
	})
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if summary.Errors != 0 {
		t.Fatalf("bench reported %d errors", summary.Errors)
	}
	if summary.UniqueKeys != 4 {
		t.Errorf("unique keys = %d, want 4", summary.UniqueKeys)
	}
	// 40 requests over 4 unique keys: at most 4 lab runs, the rest cache
	// hits or coalesced.
	if summary.LabRuns > 4 {
		t.Errorf("lab runs = %d, want <= 4 (caching/coalescing broken)", summary.LabRuns)
	}
	if summary.CacheHitRate == 0 {
		t.Errorf("cache hit rate = 0, want > 0 after %d replays", summary.Requests)
	}
	if summary.VerdictsPerS <= 0 || summary.ExecutionsPerS != 2*summary.VerdictsPerS {
		t.Errorf("throughput accounting wrong: %v verdicts/s, %v executions/s",
			summary.VerdictsPerS, summary.ExecutionsPerS)
	}
	if summary.LatencyMaxMs < summary.LatencyP50Ms {
		t.Errorf("latency percentiles inverted: p50 %v > max %v", summary.LatencyP50Ms, summary.LatencyMaxMs)
	}
	if !strings.Contains(summary.String(), "verdicts/s") {
		t.Errorf("summary rendering missing throughput: %s", summary)
	}
}

func TestBenchUnreachableDaemon(t *testing.T) {
	_, err := bench(benchOptions{
		Addr:    "http://127.0.0.1:1",
		N:       1,
		C:       1,
		Samples: []string{"kasidet"},
		Seeds:   1,
		Wait:    200 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "never became healthy") {
		t.Fatalf("unreachable daemon: err = %v, want health-wait failure", err)
	}
}

func TestBenchNoSamples(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, err := bench(benchOptions{Addr: ts.URL, N: 1, C: 1, Samples: []string{" "}, Seeds: 1, Wait: time.Second})
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("empty sample list: err = %v, want no-samples failure", err)
	}
}

// The -campaign path against an in-process daemon with a real store: the
// cold sweep pays lab runs, the warm sweep replays from cache/WAL, and
// the speedup is measurable.
func TestBenchCampaignColdWarm(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st.Close()
	srv := service.NewServer(service.Config{Workers: 4, QueueDepth: 32, CacheSize: 256, Store: st})
	srv.Start()
	eng := campaign.NewEngine(srv, campaign.Options{})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	report, err := benchCampaign(campaignOptions{Addr: ts.URL, Seeds: 1, Quota: 8, Wait: 5 * time.Second})
	if err != nil {
		t.Fatalf("benchCampaign: %v", err)
	}
	specimens := len(sweepSpecimens())
	if report.Jobs != specimens {
		t.Fatalf("jobs = %d, want %d (one per specimen)", report.Jobs, specimens)
	}
	if report.Cold.Completed != specimens || report.Warm.Completed != specimens {
		t.Fatalf("incomplete sweeps: cold %d warm %d of %d", report.Cold.Completed, report.Warm.Completed, specimens)
	}
	if report.Cold.Errors != 0 || report.Warm.Errors != 0 {
		t.Fatalf("sweep errors: cold %d warm %d", report.Cold.Errors, report.Warm.Errors)
	}
	if report.Warm.CacheHits != specimens {
		t.Fatalf("warm sweep cache hits = %d, want %d (everything replayed)", report.Warm.CacheHits, specimens)
	}
	if report.WarmSpeedup <= 1 {
		t.Fatalf("warm speedup = %.2fx, want > 1x", report.WarmSpeedup)
	}
	if !strings.Contains(report.String(), "warm speedup") {
		t.Fatalf("report rendering missing speedup: %s", report)
	}
}

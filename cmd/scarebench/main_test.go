package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scarecrow/internal/service"
)

// The bench loop against an in-process scarecrowd: all requests succeed,
// the cycled keys produce cache hits, and the daemon counters line up.
func TestBenchAgainstInProcessService(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 2, QueueDepth: 16, CacheSize: 64})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	summary, err := bench(benchOptions{
		Addr:    ts.URL,
		N:       40,
		C:       4,
		Samples: []string{"kasidet", "wannacry"},
		Seeds:   2,
		Wait:    5 * time.Second,
	})
	if err != nil {
		t.Fatalf("bench: %v", err)
	}
	if summary.Errors != 0 {
		t.Fatalf("bench reported %d errors", summary.Errors)
	}
	if summary.UniqueKeys != 4 {
		t.Errorf("unique keys = %d, want 4", summary.UniqueKeys)
	}
	// 40 requests over 4 unique keys: at most 4 lab runs, the rest cache
	// hits or coalesced.
	if summary.LabRuns > 4 {
		t.Errorf("lab runs = %d, want <= 4 (caching/coalescing broken)", summary.LabRuns)
	}
	if summary.CacheHitRate == 0 {
		t.Errorf("cache hit rate = 0, want > 0 after %d replays", summary.Requests)
	}
	if summary.VerdictsPerS <= 0 || summary.ExecutionsPerS != 2*summary.VerdictsPerS {
		t.Errorf("throughput accounting wrong: %v verdicts/s, %v executions/s",
			summary.VerdictsPerS, summary.ExecutionsPerS)
	}
	if summary.LatencyMaxMs < summary.LatencyP50Ms {
		t.Errorf("latency percentiles inverted: p50 %v > max %v", summary.LatencyP50Ms, summary.LatencyMaxMs)
	}
	if !strings.Contains(summary.String(), "verdicts/s") {
		t.Errorf("summary rendering missing throughput: %s", summary)
	}
}

func TestBenchUnreachableDaemon(t *testing.T) {
	_, err := bench(benchOptions{
		Addr:    "http://127.0.0.1:1",
		N:       1,
		C:       1,
		Samples: []string{"kasidet"},
		Seeds:   1,
		Wait:    200 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "never became healthy") {
		t.Fatalf("unreachable daemon: err = %v, want health-wait failure", err)
	}
}

func TestBenchNoSamples(t *testing.T) {
	srv := service.NewServer(service.Config{Workers: 1, QueueDepth: 4, CacheSize: 4})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, err := bench(benchOptions{Addr: ts.URL, N: 1, C: 1, Samples: []string{" "}, Seeds: 1, Wait: time.Second})
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Fatalf("empty sample list: err = %v, want no-samples failure", err)
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/malware"
)

// runCampaignMode drives -campaign: run the cold/warm sweep, print and
// write the report, and exit nonzero on sweep errors or a missed
// -min-warm-speedup gate.
func runCampaignMode(opts campaignOptions, out string, minSpeedup float64) {
	report, err := benchCampaign(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarebench:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}
	if report.Cold.Errors > 0 || report.Warm.Errors > 0 {
		fmt.Fprintf(os.Stderr, "scarebench: sweep errors (cold %d, warm %d)\n", report.Cold.Errors, report.Warm.Errors)
		os.Exit(1)
	}
	if minSpeedup > 0 && report.WarmSpeedup < minSpeedup {
		fmt.Fprintf(os.Stderr, "scarebench: warm speedup %.1fx below the required %.1fx — the cache/store replay path is not paying off\n",
			report.WarmSpeedup, minSpeedup)
		os.Exit(1)
	}
}

// campaignOptions sizes the batch benchmark.
type campaignOptions struct {
	Addr  string
	Seeds int
	Quota int
	Wait  time.Duration
}

// CampaignReport is the -campaign artifact (BENCH_campaign.json): the
// same catalog sweep run twice against one daemon. The cold pass pays
// for the lab runs; the warm pass must be served from the verdict cache
// and WAL, so its speedup is a direct measurement of what persistence
// buys a corpus re-sweep.
type CampaignReport struct {
	Benchmark string `json:"benchmark"`
	Addr      string `json:"addr"`
	Specimens int    `json:"specimens"`
	Seeds     int    `json:"seeds"`
	Jobs      int    `json:"jobs"`
	Quota     int    `json:"quota"`

	Cold campaign.Summary `json:"cold"`
	Warm campaign.Summary `json:"warm"`

	// ColdUncachedVerdictsPerS is the cold sweep's rate over cache misses
	// only: (completed - cache_hits) / wall. The raw cold verdicts_per_s
	// flatters the lab whenever anything warmed the daemon first — the
	// smoke script's classic bench, an earlier campaign, a surviving WAL —
	// because those jobs complete at replay speed without a single lab
	// run. This figure is the honest cost of an uncached verdict and the
	// number any speedup claim must be measured against.
	ColdUncachedVerdictsPerS float64 `json:"cold_uncached_verdicts_per_s"`

	// WarmSpeedup is cold wall time over warm wall time.
	WarmSpeedup float64 `json:"warm_speedup"`
}

func (r CampaignReport) String() string {
	return fmt.Sprintf(
		"scarebench campaign: %d specimens x %d seeds = %d jobs (quota %d)\n"+
			"  cold: %.2fs wall, %.1f verdicts/s (%.1f/s over the %d uncached), %d cache hits, %d errors\n"+
			"  warm: %.2fs wall, %.1f verdicts/s, %d cache hits, %d errors\n"+
			"  warm speedup: %.1fx\n",
		r.Specimens, r.Seeds, r.Jobs, r.Quota,
		r.Cold.WallS, r.Cold.VerdictsPerS, r.ColdUncachedVerdictsPerS, r.Cold.Completed-r.Cold.CacheHits, r.Cold.CacheHits, r.Cold.Errors,
		r.Warm.WallS, r.Warm.VerdictsPerS, r.Warm.CacheHits, r.Warm.Errors,
		r.WarmSpeedup)
}

// sweepSpecimens is the benchmark corpus: the six case-study families
// plus the 13 Joe Security Table I samples. The MalGene corpus is left
// out on purpose — 1054 specimens belong in an explicit overnight sweep,
// not the default benchmark.
func sweepSpecimens() []string {
	names := malware.CatalogNames()
	for _, s := range malware.JoeSecuritySamples() {
		names = append(names, "joe:"+s.ID)
	}
	return names
}

// benchCampaign runs the cold/warm catalog sweep through /v1/campaign.
func benchCampaign(opts campaignOptions) (CampaignReport, error) {
	if err := waitHealthy(opts.Addr, opts.Wait); err != nil {
		return CampaignReport{}, err
	}
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}
	specimens := sweepSpecimens()
	seeds := make([]int64, opts.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	manifest := campaign.Manifest{Specimens: specimens, Seeds: seeds, Quota: opts.Quota}

	report := CampaignReport{
		Benchmark: "scarebench-campaign",
		Addr:      opts.Addr,
		Specimens: len(specimens),
		Seeds:     opts.Seeds,
		Jobs:      len(specimens) * opts.Seeds,
		Quota:     opts.Quota,
	}
	var err error
	if report.Cold, err = sweep(opts.Addr, manifest); err != nil {
		return report, fmt.Errorf("cold sweep: %w", err)
	}
	if report.Cold.WallS > 0 {
		report.ColdUncachedVerdictsPerS = float64(report.Cold.Completed-report.Cold.CacheHits) / report.Cold.WallS
	}
	if report.Warm, err = sweep(opts.Addr, manifest); err != nil {
		return report, fmt.Errorf("warm sweep: %w", err)
	}
	if report.Warm.WallS > 0 {
		report.WarmSpeedup = report.Cold.WallS / report.Warm.WallS
	}
	return report, nil
}

// sweep launches one campaign and follows its SSE stream to the terminal
// summary.
func sweep(addr string, m campaign.Manifest) (campaign.Summary, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return campaign.Summary{}, err
	}
	resp, err := http.Post(addr+"/v1/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		return campaign.Summary{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return campaign.Summary{}, fmt.Errorf("launch: status %d", resp.StatusCode)
	}
	var launched struct {
		ID     string `json:"id"`
		Events string `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		return campaign.Summary{}, fmt.Errorf("decoding launch response: %w", err)
	}

	// Follow the stream with the default (timeout-free) client: the
	// daemon closes it right after the summary event.
	stream, err := http.Get(addr + launched.Events)
	if err != nil {
		return campaign.Summary{}, fmt.Errorf("opening event stream: %w", err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev campaign.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return campaign.Summary{}, fmt.Errorf("decoding event: %w", err)
		}
		if ev.Type == "summary" && ev.Summary != nil {
			return *ev.Summary, nil
		}
	}
	if err := sc.Err(); err != nil {
		return campaign.Summary{}, fmt.Errorf("reading event stream: %w", err)
	}
	return campaign.Summary{}, fmt.Errorf("campaign %s stream ended without a summary", launched.ID)
}

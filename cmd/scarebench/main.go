// Command scarebench load-tests a scarecrowd instance: it fires a fixed
// number of /v1/verdict requests at a chosen concurrency, cycling a small
// set of (specimen, seed) pairs so the daemon's verdict cache and request
// coalescing actually engage, and reports client-side latency and
// throughput alongside the daemon's own /statusz counters.
//
//	scarecrowd -addr :8080 &
//	scarebench -addr http://localhost:8080 -n 200 -c 8 -out BENCH_service.json
//
// Exit status is nonzero if any request failed, or — with -require-hits —
// if the daemon reports a zero cache hit-rate (the determinism the service
// is built on would not be paying off).
//
// With -campaign the tool instead benchmarks the batch path: it sweeps
// the malware catalog (case studies + Joe Security samples) twice through
// /v1/campaign, following each sweep's SSE stream to its terminal
// summary, and writes BENCH_campaign.json comparing the cold pass against
// the warm replay. -min-warm-speedup turns the comparison into a gate:
// the warm sweep must beat the cold one by that factor, which only
// happens when the verdict cache and durable store are actually serving.
//
// With -front the tool benchmarks the scale-out tier: the same catalog
// sweep pushed through scarefront's hash-routing and SSE-merge layer
// over in-process backend fleets (-front-backends, default 2 and 4),
// against a single-backend baseline, writing BENCH_front.json with
// per-backend and aggregate throughput. -min-scaling gates each fleet
// against min(N, GOMAXPROCS) times the baseline warm rate — the
// parallelism the host can actually express.
//
// With -monitor the tool benchmarks the real-time deterrence tier in
// process: each catalog ransomware row runs once per seed under canary
// planting, the live trace tap, and kill-on-flag enforcement, writing
// BENCH_monitor.json with the detection rate and the files lost before
// each kill. -min-detection-rate and -max-median-files-lost turn those
// numbers into gates.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "scarecrowd base URL")
		n           = flag.Int("n", 200, "total verdict requests")
		c           = flag.Int("c", 8, "concurrent clients")
		samples     = flag.String("samples", "kasidet,wannacry,locky,scaware,spawner", "comma-separated catalog samples to cycle")
		seeds       = flag.Int("seeds", 4, "distinct seeds per sample (unique keys = samples x seeds)")
		out         = flag.String("out", "BENCH_service.json", "summary artifact path (empty = skip)")
		requireHits = flag.Bool("require-hits", false, "fail if the daemon reports a zero cache hit-rate")
		wait        = flag.Duration("wait", 30*time.Second, "how long to wait for the daemon to become healthy")

		campaignMode = flag.Bool("campaign", false, "benchmark the batch path: cold+warm catalog sweep via /v1/campaign")
		campaignOut  = flag.String("campaign-out", "BENCH_campaign.json", "campaign artifact path (empty = skip)")
		quota        = flag.Int("quota", 8, "campaign in-flight quota (campaign mode)")
		minSpeedup   = flag.Float64("min-warm-speedup", 0, "fail unless the warm sweep is this many times faster than the cold one (0 = no gate)")

		synthMode    = flag.Bool("synth", false, "benchmark the adversarial fuzzer: fixed-seed coverage-guided campaign, no daemon needed")
		synthOut     = flag.String("synth-out", "BENCH_synth.json", "synth artifact path (empty = skip)")
		synthSeed    = flag.Int64("synth-seed", 1, "campaign seed (synth mode)")
		synthBudget  = flag.Int("synth-budget", 2000, "generations to run (synth mode)")
		synthDepth   = flag.Int("synth-depth", 3, "max predicate depth (synth mode)")
		synthWorkers = flag.Int("synth-workers", 0, "evaluation fan-out width (0 = GOMAXPROCS)")
		minCovGrowth = flag.Float64("min-cov-growth", 0, "fail unless unique coverage per 1k generations meets this floor (0 = no gate)")

		frontMode     = flag.Bool("front", false, "benchmark the scale-out tier: cold+warm sweeps through scarefront over in-process backend fleets, no daemon needed")
		frontOut      = flag.String("front-out", "BENCH_front.json", "front artifact path (empty = skip)")
		frontBackends = flag.String("front-backends", "2,4", "comma-separated fleet sizes to measure against the N=1 baseline (front mode)")
		minScaling    = flag.Float64("min-scaling", 0, "fail unless each fleet's aggregate warm rate is at least this fraction of min(N, GOMAXPROCS) x the single-backend rate (0 = no gate)")

		monitorMode      = flag.Bool("monitor", false, "benchmark the real-time deterrence tier: monitored runs with canary planting and kill-on-flag, no daemon needed")
		monitorOut       = flag.String("monitor-out", "BENCH_monitor.json", "monitor artifact path (empty = skip)")
		monitorSamples   = flag.String("monitor-samples", "wannacry,locky,cryptowall,wannacry-gated,locky-gated", "comma-separated catalog samples to monitor")
		monitorSeeds     = flag.Int("monitor-seeds", 4, "distinct machine seeds per sample (monitor mode)")
		minDetectionRate = flag.Float64("min-detection-rate", 0, "fail unless the deterred fraction meets this floor (0 = no gate)")
		maxMedianLost    = flag.Float64("max-median-files-lost", -1, "fail if the median files lost before kill exceeds this (negative = no gate)")

		hotpathMode     = flag.Bool("hotpath", false, "benchmark the in-process cold path: clone+run+marshal+commit, no daemon needed")
		hotpathOut      = flag.String("hotpath-out", "BENCH_hotpath.json", "hotpath artifact path (empty = skip)")
		hotpathN        = flag.Int("hotpath-n", 512, "cold verdicts to run (hotpath mode)")
		hotpathWorkers  = flag.Int("hotpath-workers", 0, "cold pipeline width (0 = GOMAXPROCS, the service default)")
		hotpathBaseline = flag.Float64("hotpath-baseline", 90, "honest pre-optimization cold rate in verdicts/s (see hotpath.go for its derivation)")
		minColdSpeedup  = flag.Float64("min-cold-speedup", 0, "fail unless cold verdicts/s beats -hotpath-baseline by this factor (0 = no gate)")
	)
	flag.Parse()

	if *synthMode {
		runSynthMode(synthOptions{
			Seed:         *synthSeed,
			Budget:       *synthBudget,
			MaxDepth:     *synthDepth,
			Workers:      *synthWorkers,
			MinCovGrowth: *minCovGrowth,
		}, *synthOut)
		return
	}

	if *frontMode {
		fleets, err := parseFleets(*frontBackends)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		runFrontMode(frontOptions{
			Fleets:     fleets,
			Seeds:      *seeds,
			Quota:      *quota,
			MinScaling: *minScaling,
		}, *frontOut)
		return
	}

	if *monitorMode {
		runMonitorMode(monitorOptions{
			Samples:            strings.Split(*monitorSamples, ","),
			Seeds:              *monitorSeeds,
			MinDetectionRate:   *minDetectionRate,
			MaxMedianFilesLost: *maxMedianLost,
		}, *monitorOut)
		return
	}

	if *hotpathMode {
		runHotpathMode(hotpathOptions{
			N:          *hotpathN,
			Workers:    *hotpathWorkers,
			Baseline:   *hotpathBaseline,
			MinSpeedup: *minColdSpeedup,
		}, *hotpathOut)
		return
	}

	if *campaignMode {
		runCampaignMode(campaignOptions{
			Addr:  strings.TrimRight(*addr, "/"),
			Seeds: *seeds,
			Quota: *quota,
			Wait:  *wait,
		}, *campaignOut, *minSpeedup)
		return
	}

	summary, err := bench(benchOptions{
		Addr:    strings.TrimRight(*addr, "/"),
		N:       *n,
		C:       *c,
		Samples: strings.Split(*samples, ","),
		Seeds:   *seeds,
		Wait:    *wait,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarebench:", err)
		os.Exit(1)
	}
	fmt.Print(summary)
	if *out != "" {
		buf, err := json.MarshalIndent(summary, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}
	if summary.Errors > 0 {
		fmt.Fprintf(os.Stderr, "scarebench: %d requests failed\n", summary.Errors)
		os.Exit(1)
	}
	if *requireHits && summary.CacheHitRate == 0 {
		fmt.Fprintln(os.Stderr, "scarebench: daemon reports zero cache hit-rate")
		os.Exit(1)
	}
}

type benchOptions struct {
	Addr    string
	N, C    int
	Samples []string
	Seeds   int
	Wait    time.Duration
}

// Summary is the benchmark result, printed and written to -out.
type Summary struct {
	Benchmark   string `json:"benchmark"`
	Addr        string `json:"addr"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	UniqueKeys  int    `json:"unique_keys"`

	Errors  int `json:"errors"`
	Retried int `json:"retried_429"`

	WallS        float64 `json:"wall_s"`
	VerdictsPerS float64 `json:"verdicts_per_s"`
	// ExecutionsPerS counts verdict-equivalent machine executions served
	// per wall second (2 per verdict: raw + protected) — directly
	// comparable to analysis.RunReport.Throughput for a single-process
	// sweep.
	ExecutionsPerS float64 `json:"executions_per_s"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// Daemon-side counters from /statusz after the run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	LabRuns      uint64  `json:"lab_runs"`
	Coalesced    uint64  `json:"coalesced"`
	Rejected     uint64  `json:"rejected"`
}

func (s Summary) String() string {
	return fmt.Sprintf(
		"scarebench: %d requests, %d clients, %d unique keys\n"+
			"  wall %.2fs, %.1f verdicts/s (%.1f executions/s)\n"+
			"  latency p50 %.2fms  p95 %.2fms  max %.2fms\n"+
			"  daemon: %d lab runs, %.0f%% cache hit-rate, %d coalesced, %d rejected, %d errors (%d retried on 429)\n",
		s.Requests, s.Concurrency, s.UniqueKeys,
		s.WallS, s.VerdictsPerS, s.ExecutionsPerS,
		s.LatencyP50Ms, s.LatencyP95Ms, s.LatencyMaxMs,
		s.LabRuns, 100*s.CacheHitRate, s.Coalesced, s.Rejected, s.Errors, s.Retried)
}

// statusz mirrors the fields scarebench reads from the daemon's snapshot.
type statusz struct {
	CacheHitRate float64 `json:"cache_hit_rate"`
	LabRuns      uint64  `json:"lab_runs"`
	Coalesced    uint64  `json:"coalesced"`
	Rejected     uint64  `json:"rejected"`
}

func bench(opts benchOptions) (Summary, error) {
	if err := waitHealthy(opts.Addr, opts.Wait); err != nil {
		return Summary{}, err
	}
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}

	// The request mix cycles samples x seeds unique keys; with n well above
	// that product, most requests replay a key and must be served from the
	// cache (or coalesce while the first run is still in flight).
	bodies := make([][]byte, 0, len(opts.Samples)*opts.Seeds)
	for _, sample := range opts.Samples {
		sample = strings.TrimSpace(sample)
		if sample == "" {
			continue
		}
		for seed := 1; seed <= opts.Seeds; seed++ {
			body, err := json.Marshal(map[string]any{"specimen": sample, "seed": seed})
			if err != nil {
				return Summary{}, err
			}
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		return Summary{}, fmt.Errorf("no samples to bench")
	}

	var (
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, opts.N)
		errCount  int
		retried   int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.C; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 60 * time.Second}
			for i := range work {
				t0 := time.Now()
				retries, err := verdict(client, opts.Addr, bodies[i%len(bodies)])
				elapsed := time.Since(t0)
				mu.Lock()
				if err != nil {
					errCount++
					fmt.Fprintf(os.Stderr, "scarebench: request %d: %v\n", i, err)
				} else {
					latencies = append(latencies, elapsed)
				}
				retried += retries
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < opts.N; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	summary := Summary{
		Benchmark:   "scarebench",
		Addr:        opts.Addr,
		Requests:    opts.N,
		Concurrency: opts.C,
		UniqueKeys:  len(bodies),
		Errors:      errCount,
		Retried:     retried,
		WallS:       wall.Seconds(),
	}
	if wall > 0 {
		summary.VerdictsPerS = float64(len(latencies)) / wall.Seconds()
		summary.ExecutionsPerS = 2 * summary.VerdictsPerS
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		summary.LatencyP50Ms = ms(latencies[len(latencies)/2])
		summary.LatencyP95Ms = ms(latencies[len(latencies)*95/100])
		summary.LatencyMaxMs = ms(latencies[len(latencies)-1])
	}

	st, err := readStatusz(opts.Addr)
	if err != nil {
		return summary, fmt.Errorf("reading statusz: %w", err)
	}
	summary.CacheHitRate = st.CacheHitRate
	summary.LabRuns = st.LabRuns
	summary.Coalesced = st.Coalesced
	summary.Rejected = st.Rejected
	return summary, nil
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// verdict posts one synchronous verdict request, retrying on 429 with the
// advertised Retry-After (bounded — a drowning daemon should fail the
// bench, not hang it).
func verdict(client *http.Client, addr string, body []byte) (retries int, err error) {
	const maxRetries = 10
	for {
		resp, err := client.Post(addr+"/v1/verdict", "application/json", bytes.NewReader(body))
		if err != nil {
			return retries, err
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var doc map[string]any
			if err := json.Unmarshal(payload, &doc); err != nil {
				return retries, fmt.Errorf("verdict not JSON: %v", err)
			}
			if doc["category"] == "error" {
				return retries, fmt.Errorf("verdict errored: %v", doc["error"])
			}
			return retries, nil
		case http.StatusTooManyRequests:
			if retries++; retries > maxRetries {
				return retries, fmt.Errorf("still 429 after %d retries", maxRetries)
			}
			backoff := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
					backoff = time.Duration(secs) * time.Second
				}
			}
			// Cap the advertised backoff: the bench wants pressure, not
			// politeness.
			if backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			time.Sleep(backoff)
		default:
			return retries, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
		}
	}
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	client := &http.Client{Timeout: 2 * time.Second}
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s never became healthy: %v", addr, err)
			}
			return fmt.Errorf("daemon at %s never became healthy", addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func readStatusz(addr string) (statusz, error) {
	var st statusz
	resp, err := http.Get(addr + "/statusz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("statusz: status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

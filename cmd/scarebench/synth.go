package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"scarecrow/internal/synth"
)

// The synth mode benchmarks the adversarial QA harness end to end: a
// fixed-seed coverage-guided fuzzing campaign run in process (no daemon),
// reporting generation throughput, unique-coverage growth, and gap yield.
// The -min-cov-growth gate turns coverage growth into a regression
// tripwire: a fuzzer whose generations stop lighting up new
// api:/hook:/db: keys has lost its search signal — typically a generator
// or coverage-extraction regression, not a saturated catalog (the gate's
// default is calibrated well below the saturation plateau).

type synthOptions struct {
	// Seed drives the whole campaign (generation, machine seeds).
	Seed int64
	// Budget is the number of generations to run.
	Budget int
	// MaxDepth bounds generated predicate trees.
	MaxDepth int
	// Workers is the evaluation fan-out width (0 = GOMAXPROCS).
	Workers int
	// MinCovGrowth gates unique-coverage keys per 1k generations
	// (0 = report only).
	MinCovGrowth float64
}

// SynthReport is the BENCH_synth.json shape.
type SynthReport struct {
	Seed     int64 `json:"seed"`
	Budget   int   `json:"budget"`
	MaxDepth int   `json:"max_depth"`
	Workers  int   `json:"workers"`

	Generations     int     `json:"generations"`
	LabRuns         int     `json:"lab_runs"`
	WallS           float64 `json:"wall_s"`
	GenerationsPerS float64 `json:"generations_per_s"`

	UniqueCoverage    int     `json:"unique_coverage"`
	CoveragePer1kGens float64 `json:"coverage_per_1k_generations"`

	GapsFound     int `json:"gaps_found"`
	GapsMinimized int `json:"gaps_minimized"`
	// GapKinds tallies minimized gaps by classification.
	GapKinds map[string]int `json:"gap_kinds"`
}

func (r SynthReport) String() string {
	return fmt.Sprintf(`scarebench synth
  campaign:   seed %d, budget %d generations, depth <= %d, %d workers
  throughput: %d generations (%d lab runs) in %.2fs = %.1f generations/s
  coverage:   %d unique keys = %.1f per 1k generations
  gaps:       %d found, %d minimized (%v)
`,
		r.Seed, r.Budget, r.MaxDepth, r.Workers,
		r.Generations, r.LabRuns, r.WallS, r.GenerationsPerS,
		r.UniqueCoverage, r.CoveragePer1kGens,
		r.GapsFound, r.GapsMinimized, r.GapKinds)
}

// runSynthMode drives -synth: run the campaign, print, write
// BENCH_synth.json, and exit nonzero on a missed coverage gate.
func runSynthMode(opts synthOptions, out string) {
	report := benchSynth(opts)
	fmt.Print(report)
	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}
	if opts.MinCovGrowth > 0 && report.CoveragePer1kGens < opts.MinCovGrowth {
		fmt.Fprintf(os.Stderr,
			"scarebench: coverage growth %.1f keys/1k generations below the required %.1f — the fuzzer's search signal regressed\n",
			report.CoveragePer1kGens, opts.MinCovGrowth)
		os.Exit(1)
	}
}

// benchSynth runs one fixed-seed campaign and condenses it into the
// artifact shape.
func benchSynth(opts synthOptions) SynthReport {
	if opts.Budget < 1 {
		opts.Budget = 1
	}
	if opts.MaxDepth < 1 {
		opts.MaxDepth = 3
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	f := synth.NewFuzzer(opts.Seed, opts.MaxDepth)
	f.Ev.Workers = workers
	start := time.Now()
	rep := f.Run(opts.Budget)
	wall := time.Since(start)

	out := SynthReport{
		Seed:           opts.Seed,
		Budget:         opts.Budget,
		MaxDepth:       opts.MaxDepth,
		Workers:        workers,
		Generations:    rep.Generations,
		LabRuns:        rep.LabRuns,
		WallS:          wall.Seconds(),
		UniqueCoverage: rep.UniqueCoverage,
		GapsFound:      len(rep.Gaps),
		GapsMinimized:  len(rep.MinimizedGaps),
		GapKinds:       map[string]int{},
	}
	if wall > 0 {
		out.GenerationsPerS = float64(rep.Generations) / wall.Seconds()
	}
	if rep.Generations > 0 {
		out.CoveragePer1kGens = float64(rep.UniqueCoverage) * 1000 / float64(rep.Generations)
	}
	for _, g := range rep.Gaps {
		out.GapKinds[string(g.Kind)]++
	}
	return out
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/malware"
	"scarecrow/internal/store"
	"scarecrow/internal/trace"
	"scarecrow/internal/winsim"
)

// The hotpath mode is the in-process companion to the service benchmarks:
// it runs the exact work a scarecrowd worker does per cold verdict — clone
// a template machine, execute raw and protected runs, render the verdict,
// commit it to the WAL — without HTTP or SSE in the way, and pins the
// allocation behaviour of each stage with micro-benchmarks.
//
// The cold gate compares against baselineColdPerS, the honest
// pre-optimization number: the seed tree's campaign cold sweep completed
// 76 jobs in 0.62s but 20 of those were cache hits planted by the classic
// bench that service-smoke.sh runs first against the same daemon, so the
// real uncached rate was (76-20)/0.62s ≈ 90 verdicts/s. That corrected
// figure — not the flattering 122/s the old artifact printed — is what
// the 5x speedup gate is measured from.

// Allocation budgets for the micro-benchmarked stages, mirrored by the
// AllocsPerRun regression tests in the owning packages. The clone budget
// is "a few dozen" rather than zero: a machine clone legitimately builds
// a handful of fresh maps and one process arena; the budget exists to
// keep the old per-field deep copy (~2000 allocations) from creeping
// back.
const (
	budgetCloneAllocs   = 64
	budgetRecordAllocs  = 0.5
	budgetMarshalAllocs = 2
	budgetPutAllocs     = 2
)

type hotpathOptions struct {
	// N is the number of cold verdicts the pipeline measurement runs.
	N int
	// Workers is the pipeline width (0 = GOMAXPROCS, the service default).
	Workers int
	// Baseline is the honest pre-optimization cold rate in verdicts/s.
	Baseline float64
	// MinSpeedup gates ColdSpeedup (0 = report only).
	MinSpeedup float64
}

// MicroBench is one stage's micro-benchmark result.
type MicroBench struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// HotpathReport is the -hotpath artifact (BENCH_hotpath.json).
type HotpathReport struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`

	// Cold pipeline: unique keys end to end, nothing served from cache.
	ColdVerdicts     int     `json:"cold_verdicts"`
	ColdWorkers      int     `json:"cold_workers"`
	ColdErrors       int     `json:"cold_errors"`
	ColdWallS        float64 `json:"cold_wall_s"`
	ColdVerdictsPerS float64 `json:"cold_verdicts_per_s"`

	// BaselineColdVerdictsPerS is the honest seed-tree rate the speedup is
	// computed against (see the package comment for its derivation).
	BaselineColdVerdictsPerS float64 `json:"baseline_cold_verdicts_per_s"`
	ColdSpeedup              float64 `json:"cold_speedup"`

	// Per-stage micro-benchmarks. StorePutBatched is per record inside an
	// 8-record group commit.
	Clone           MicroBench `json:"clone"`
	Record          MicroBench `json:"record"`
	Marshal         MicroBench `json:"marshal"`
	StorePutBatched MicroBench `json:"store_put_batched"`
}

func (r HotpathReport) String() string {
	return fmt.Sprintf(
		"scarebench hotpath: %d cold verdicts, %d workers (GOMAXPROCS %d)\n"+
			"  cold: %.2fs wall, %.1f verdicts/s — %.1fx over the honest %.1f/s baseline\n"+
			"  clone:   %8.0f ns/op  %6.1f allocs/op  %8.0f B/op\n"+
			"  record:  %8.0f ns/op  %6.2f allocs/op  %8.0f B/op\n"+
			"  marshal: %8.0f ns/op  %6.1f allocs/op  %8.0f B/op\n"+
			"  put:     %8.0f ns/op  %6.2f allocs/op  %8.0f B/op (per record, batched)\n",
		r.ColdVerdicts, r.ColdWorkers, r.GoMaxProcs,
		r.ColdWallS, r.ColdVerdictsPerS, r.ColdSpeedup, r.BaselineColdVerdictsPerS,
		r.Clone.NsPerOp, r.Clone.AllocsPerOp, r.Clone.BytesPerOp,
		r.Record.NsPerOp, r.Record.AllocsPerOp, r.Record.BytesPerOp,
		r.Marshal.NsPerOp, r.Marshal.AllocsPerOp, r.Marshal.BytesPerOp,
		r.StorePutBatched.NsPerOp, r.StorePutBatched.AllocsPerOp, r.StorePutBatched.BytesPerOp)
}

// runHotpathMode drives -hotpath: measure, print, write the artifact, and
// exit nonzero on a missed gate — the regression tripwire make ci relies
// on.
func runHotpathMode(opts hotpathOptions, out string) {
	report, err := benchHotpath(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarebench:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scarebench: "+format+"\n", args...)
		failed = true
	}
	if report.ColdErrors > 0 {
		fail("%d cold verdicts errored", report.ColdErrors)
	}
	if opts.MinSpeedup > 0 && report.ColdSpeedup < opts.MinSpeedup {
		fail("cold speedup %.1fx below the required %.1fx (%.1f verdicts/s vs the %.1f/s baseline)",
			report.ColdSpeedup, opts.MinSpeedup, report.ColdVerdictsPerS, report.BaselineColdVerdictsPerS)
	}
	if report.Clone.AllocsPerOp > budgetCloneAllocs {
		fail("Snapshot.Clone allocates %.1f objects/op, budget is %d", report.Clone.AllocsPerOp, budgetCloneAllocs)
	}
	if report.Record.AllocsPerOp > budgetRecordAllocs {
		fail("Recorder.Record allocates %.2f objects/op, budget is %.1f", report.Record.AllocsPerOp, budgetRecordAllocs)
	}
	if report.Marshal.AllocsPerOp > budgetMarshalAllocs {
		fail("verdict marshal allocates %.1f objects/op, budget is %d", report.Marshal.AllocsPerOp, budgetMarshalAllocs)
	}
	if report.StorePutBatched.AllocsPerOp > budgetPutAllocs {
		fail("batched Store.Put allocates %.2f objects/record, budget is %d", report.StorePutBatched.AllocsPerOp, budgetPutAllocs)
	}
	if failed {
		os.Exit(1)
	}
}

// benchHotpath measures the cold pipeline and the per-stage micro-benches.
func benchHotpath(opts hotpathOptions) (HotpathReport, error) {
	if opts.N < 1 {
		opts.N = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	specs, err := catalogSpecimens()
	if err != nil {
		return HotpathReport{}, err
	}

	report := HotpathReport{
		Benchmark:                "scarebench-hotpath",
		GoMaxProcs:               runtime.GOMAXPROCS(0),
		ColdVerdicts:             opts.N,
		ColdWorkers:              workers,
		BaselineColdVerdictsPerS: opts.Baseline,
	}

	wall, errs, err := coldPipeline(specs, opts.N, workers)
	if err != nil {
		return report, err
	}
	report.ColdErrors = errs
	report.ColdWallS = wall.Seconds()
	if wall > 0 {
		report.ColdVerdictsPerS = float64(opts.N) / wall.Seconds()
	}
	if opts.Baseline > 0 {
		report.ColdSpeedup = report.ColdVerdictsPerS / opts.Baseline
	}

	report.Clone = benchClone()
	report.Record = benchRecord()
	if report.Marshal, err = benchMarshal(specs[0]); err != nil {
		return report, err
	}
	if report.StorePutBatched, err = benchPutBatched(); err != nil {
		return report, err
	}
	return report, nil
}

func catalogSpecimens() ([]*malware.Specimen, error) {
	names := malware.CatalogNames()
	specs := make([]*malware.Specimen, 0, len(names))
	for _, name := range names {
		s, err := malware.Resolve(name)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", name, err)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// coldPipeline runs n unique (specimen, seed) verdicts through the worker
// path — lab run, verdict render, WAL commit — and returns the wall time.
// Every key is fresh, so nothing can be served from a cache: this is the
// pure cold rate.
func coldPipeline(specs []*malware.Specimen, n, workers int) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "scarebench-hotpath-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		return 0, 0, err
	}
	defer st.Close()

	var (
		work = make(chan int)
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs int
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lab := analysis.NewLab(0)
			var buf []byte
			for i := range work {
				s := specs[i%len(specs)]
				seed := int64(i + 1)
				res := lab.RunSampleSeeded(s, seed)
				var renderErr error
				buf, renderErr = res.Doc().AppendJSON(buf[:0])
				if res.Err != nil || renderErr != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				key := fmt.Sprintf("%s|%s|%d", s.ID, winsim.ProfileBareMetalSandbox, seed)
				if err := st.Put(key, buf); err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return time.Since(start), errs, nil
}

func micro(r testing.BenchmarkResult, opsPerIter float64) MicroBench {
	iters := float64(r.N) * opsPerIter
	if iters == 0 {
		return MicroBench{}
	}
	return MicroBench{
		NsPerOp:     float64(r.T.Nanoseconds()) / iters,
		AllocsPerOp: float64(r.MemAllocs) / iters,
		BytesPerOp:  float64(r.MemBytes) / iters,
	}
}

func benchClone() MicroBench {
	template := winsim.NewProfileMachine(winsim.ProfileBareMetalSandbox, 0).Snapshot()
	return micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = template.Clone(int64(i))
		}
	}), 1)
}

func benchRecord() MicroBench {
	return micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		r := trace.NewRecorder()
		defer r.Release()
		ev := trace.Event{Kind: trace.KindFileRead, PID: 4242, Image: "sample.exe", Target: `C:\sample.exe`}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Record(ev)
		}
	}), 1)
}

func benchMarshal(s *malware.Specimen) (MicroBench, error) {
	res := analysis.NewLab(0).RunSampleSeeded(s, 1)
	if res.Err != nil {
		return MicroBench{}, fmt.Errorf("marshal bench lab run: %w", res.Err)
	}
	doc := res.Doc()
	if _, err := doc.AppendJSON(nil); err != nil {
		return MicroBench{}, err
	}
	return micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf, _ = doc.AppendJSON(buf[:0])
		}
	}), 1), nil
}

func benchPutBatched() (MicroBench, error) {
	dir, err := os.MkdirTemp("", "scarebench-put-*")
	if err != nil {
		return MicroBench{}, err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{NoBackground: true})
	if err != nil {
		return MicroBench{}, err
	}
	defer st.Close()

	const batchSize = 8
	batch := make([]store.Record, batchSize)
	for i := range batch {
		batch[i] = store.Record{
			Key: fmt.Sprintf("hotpath|baremetal-sandbox|%d", i),
			Val: []byte(`{"category":"deactivated","confidence":0.97}`),
		}
	}
	if err := st.PutBatch(batch); err != nil {
		return MicroBench{}, err
	}
	return micro(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := st.PutBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
	}), batchSize), nil
}

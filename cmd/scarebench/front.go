package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/front"
	"scarecrow/internal/service"
)

// runFrontMode drives -front: measure the scale-out tier over in-process
// backend fleets, print and write the report, and exit nonzero on sweep
// errors or a missed -min-scaling gate.
func runFrontMode(opts frontOptions, out string) {
	report, err := benchFront(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarebench:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}
	failed := false
	for _, run := range append([]FrontRun{report.Baseline}, report.Runs...) {
		if run.Cold.Errors > 0 || run.Warm.Errors > 0 {
			fmt.Fprintf(os.Stderr, "scarebench: N=%d sweep errors (cold %d, warm %d)\n", run.Backends, run.Cold.Errors, run.Warm.Errors)
			failed = true
		}
	}
	if opts.MinScaling > 0 {
		for _, run := range report.Runs {
			if run.ScalingX < opts.MinScaling*float64(run.ScalingBasis) {
				fmt.Fprintf(os.Stderr,
					"scarebench: N=%d aggregate warm scaling %.2fx below the required %.2f x %d — sharding is not paying off\n",
					run.Backends, run.ScalingX, opts.MinScaling, run.ScalingBasis)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// frontOptions sizes the scale-out benchmark.
type frontOptions struct {
	// Fleets lists the backend counts to measure (beyond the N=1
	// baseline).
	Fleets []int
	Seeds  int
	Quota  int
	// MinScaling gates each fleet: aggregate warm verdicts/s must be at
	// least MinScaling x basis x the single-backend warm rate, where
	// basis = min(N, GOMAXPROCS). On a box with fewer cores than
	// backends, in-process shards time-slice one CPU — near-linear
	// scaling is physically unobservable there, so the basis clamps the
	// expectation to the parallelism the host can actually express.
	MinScaling float64
}

// FrontBackendStat is one backend's share of a fleet's warm sweep.
type FrontBackendStat struct {
	Index        int     `json:"index"`
	Cells        int     `json:"cells"`
	WallS        float64 `json:"wall_s"`
	VerdictsPerS float64 `json:"verdicts_per_s"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	LabRuns      uint64  `json:"lab_runs"`
}

// FrontRun is one fleet size's cold/warm measurement through the front.
type FrontRun struct {
	Backends int `json:"backends"`

	Cold campaign.Summary `json:"cold"`
	Warm campaign.Summary `json:"warm"`

	// PerBackend breaks the warm sweep down by shard: every backend's
	// sub-campaign cells and rate, plus its service counters after both
	// sweeps.
	PerBackend []FrontBackendStat `json:"per_backend"`

	// ScalingX is this fleet's aggregate warm verdicts/s over the N=1
	// baseline's (1.0 for the baseline itself).
	ScalingX float64 `json:"scaling_x"`
	// ScalingBasis is min(backends, GOMAXPROCS): the parallelism the
	// host can actually express for in-process shards.
	ScalingBasis int `json:"scaling_basis"`
}

// FrontReport is the -front artifact (BENCH_front.json): the same
// catalog sweep pushed through scarefront's routing/merge layer over
// fleets of in-process backends, against a single-backend baseline.
type FrontReport struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Specimens  int    `json:"specimens"`
	Seeds      int    `json:"seeds"`
	Jobs       int    `json:"jobs"`
	Quota      int    `json:"quota"`

	Baseline FrontRun   `json:"baseline"`
	Runs     []FrontRun `json:"runs"`
}

func (r FrontReport) String() string {
	s := fmt.Sprintf("scarebench front: %d specimens x %d seeds = %d jobs (quota %d, GOMAXPROCS %d)\n",
		r.Specimens, r.Seeds, r.Jobs, r.Quota, r.GoMaxProcs)
	for _, run := range append([]FrontRun{r.Baseline}, r.Runs...) {
		s += fmt.Sprintf("  N=%d: cold %.2fs (%.1f verdicts/s), warm %.2fs (%.1f verdicts/s), scaling %.2fx (basis %d)\n",
			run.Backends, run.Cold.WallS, run.Cold.VerdictsPerS,
			run.Warm.WallS, run.Warm.VerdictsPerS, run.ScalingX, run.ScalingBasis)
		for _, b := range run.PerBackend {
			s += fmt.Sprintf("    backend %d: %d cells, %.1f verdicts/s warm, %.0f%% cache hit-rate\n",
				b.Index, b.Cells, b.VerdictsPerS, 100*b.CacheHitRate)
		}
	}
	return s
}

// benchBackend is one in-process scarecrowd shard under the benchmark
// front.
type benchBackend struct {
	srv *service.Server
	eng *campaign.Engine
	ts  *httptest.Server
}

func startBenchBackend() *benchBackend {
	srv := service.NewServer(service.Config{Workers: 4, QueueDepth: 64, CacheSize: 4096})
	srv.Start()
	eng := campaign.NewEngine(srv, campaign.Options{})
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	return &benchBackend{srv: srv, eng: eng, ts: httptest.NewServer(mux)}
}

func (b *benchBackend) close() {
	b.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = b.srv.Shutdown(ctx)
}

// benchFront measures the N=1 baseline and each requested fleet size.
func benchFront(opts frontOptions) (FrontReport, error) {
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}
	if opts.Quota < 1 {
		opts.Quota = 8
	}
	specimens := sweepSpecimens()
	report := FrontReport{
		Benchmark:  "scarebench-front",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Specimens:  len(specimens),
		Seeds:      opts.Seeds,
		Jobs:       len(specimens) * opts.Seeds,
		Quota:      opts.Quota,
	}
	seeds := make([]int64, opts.Seeds)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	manifest := campaign.Manifest{Specimens: specimens, Seeds: seeds, Quota: opts.Quota}

	baseline, err := benchFleet(1, manifest)
	if err != nil {
		return report, fmt.Errorf("baseline fleet: %w", err)
	}
	baseline.ScalingX = 1
	baseline.ScalingBasis = 1
	report.Baseline = baseline

	for _, n := range opts.Fleets {
		if n < 2 {
			continue
		}
		run, err := benchFleet(n, manifest)
		if err != nil {
			return report, fmt.Errorf("fleet of %d: %w", n, err)
		}
		if baseline.Warm.VerdictsPerS > 0 {
			run.ScalingX = run.Warm.VerdictsPerS / baseline.Warm.VerdictsPerS
		}
		run.ScalingBasis = n
		if g := runtime.GOMAXPROCS(0); g < run.ScalingBasis {
			run.ScalingBasis = g
		}
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// benchFleet runs the cold/warm sweep through a front over n fresh
// backends and collects per-shard warm stats.
func benchFleet(n int, manifest campaign.Manifest) (FrontRun, error) {
	run := FrontRun{Backends: n}
	backends := make([]*benchBackend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = startBenchBackend()
		urls[i] = backends[i].ts.URL
		defer backends[i].close()
	}
	f, err := front.New(front.Options{Backends: urls, FrontID: "bench"})
	if err != nil {
		return run, err
	}
	f.Start()
	defer f.Close()
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()

	if run.Cold, err = sweep(fts.URL, manifest); err != nil {
		return run, fmt.Errorf("cold sweep: %w", err)
	}
	if run.Warm, err = sweep(fts.URL, manifest); err != nil {
		return run, fmt.Errorf("warm sweep: %w", err)
	}
	for i, b := range backends {
		stat := FrontBackendStat{Index: i}
		// The newest sub-campaign on each backend is its share of the
		// warm sweep (List is sorted by launch-ordered IDs).
		if sums := b.eng.List(); len(sums) > 0 {
			warm := sums[len(sums)-1]
			stat.Cells = warm.Total
			stat.WallS = warm.WallS
			if warm.WallS > 0 {
				stat.VerdictsPerS = float64(warm.Completed) / warm.WallS
			}
		}
		snap := b.srv.Snapshot()
		stat.CacheHitRate = snap.CacheHitRate
		stat.LabRuns = snap.LabRuns
		run.PerBackend = append(run.PerBackend, stat)
	}
	return run, nil
}

// parseFleets parses the -front-backends list ("2,4") into fleet sizes.
func parseFleets(raw string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no fleet sizes in %q", raw)
	}
	return out, nil
}

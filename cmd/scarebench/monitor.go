package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/winsim"
)

// The monitor mode benchmarks the real-time deterrence tier in process:
// every (sample, seed) pair runs once under canary planting, the live
// trace tap, and kill-on-flag enforcement, and the artifact reports the
// two numbers the tier is judged on — detection rate and files lost
// before the kill. Runs are deterministic, so the artifact is a
// regression gate, not a statistical estimate: -min-detection-rate and
// -max-median-files-lost turn any drift into a nonzero exit.

type monitorOptions struct {
	// Samples are the catalog rows to monitor.
	Samples []string
	// Seeds is the number of distinct machine seeds per sample.
	Seeds int
	// Workers is the fan-out width (0 = GOMAXPROCS).
	Workers int
	// MinDetectionRate gates the deterred fraction (0 = no gate).
	MinDetectionRate float64
	// MaxMedianFilesLost gates the median loss (negative = no gate).
	MaxMedianFilesLost float64
}

// MonitorRow is one monitored run in the artifact.
type MonitorRow struct {
	Specimen       string `json:"specimen"`
	Family         string `json:"family"`
	Source         string `json:"source"`
	Seed           int64  `json:"seed"`
	Category       string `json:"category"`
	Deterred       bool   `json:"deterred"`
	TimeToDetectNS int64  `json:"time_to_detect_ns"`
	FilesLost      int    `json:"files_lost_before_kill"`
	CanaryTouched  int    `json:"canaries_touched"`
	Detections     int    `json:"detections"`
	FirstSignal    string `json:"first_signal,omitempty"`
	Error          string `json:"error,omitempty"`
}

// MonitorReport is the -monitor artifact (BENCH_monitor.json).
type MonitorReport struct {
	Benchmark  string   `json:"benchmark"`
	Profile    string   `json:"profile"`
	Samples    []string `json:"samples"`
	Seeds      int      `json:"seeds"`
	Workers    int      `json:"workers"`
	GoMaxProcs int      `json:"gomaxprocs"`

	Runs     int `json:"runs"`
	Deterred int `json:"deterred"`
	Errors   int `json:"errors"`

	DetectionRate        float64 `json:"detection_rate"`
	MedianFilesLost      float64 `json:"median_files_lost"`
	MaxFilesLost         int     `json:"max_files_lost"`
	MedianTimeToDetectNS int64   `json:"median_time_to_detect_ns"`

	WallS      float64 `json:"wall_s"`
	RunsPerS   float64 `json:"runs_per_s"`
	VirtualNSS int64   `json:"virtual_ns_total"`

	Rows []MonitorRow `json:"rows"`
}

func (r MonitorReport) String() string {
	return fmt.Sprintf(
		"scarebench monitor: %d runs (%d samples x %d seeds), %d workers\n"+
			"  detection rate %.0f%% (%d/%d deterred, %d errors)\n"+
			"  files lost before kill: median %.1f, max %d\n"+
			"  median time-to-detect %.2fms virtual, wall %.2fs (%.1f runs/s)\n",
		r.Runs, len(r.Samples), r.Seeds, r.Workers,
		100*r.DetectionRate, r.Deterred, r.Runs, r.Errors,
		r.MedianFilesLost, r.MaxFilesLost,
		float64(r.MedianTimeToDetectNS)/1e6, r.WallS, r.RunsPerS)
}

// runMonitorMode drives -monitor: measure, print, write the artifact, and
// exit nonzero on a missed gate.
func runMonitorMode(opts monitorOptions, out string) {
	report, err := benchMonitor(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarebench:", err)
		os.Exit(1)
	}
	fmt.Print(report)
	if out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scarebench:", err)
			os.Exit(1)
		}
	}
	failed := false
	if report.Errors > 0 {
		fmt.Fprintf(os.Stderr, "scarebench: %d monitored runs errored\n", report.Errors)
		failed = true
	}
	if opts.MinDetectionRate > 0 && report.DetectionRate < opts.MinDetectionRate {
		fmt.Fprintf(os.Stderr, "scarebench: detection rate %.2f below the %.2f gate\n",
			report.DetectionRate, opts.MinDetectionRate)
		failed = true
	}
	if opts.MaxMedianFilesLost >= 0 && report.MedianFilesLost > opts.MaxMedianFilesLost {
		fmt.Fprintf(os.Stderr, "scarebench: median files lost %.1f above the %.1f gate\n",
			report.MedianFilesLost, opts.MaxMedianFilesLost)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func benchMonitor(opts monitorOptions) (MonitorReport, error) {
	if opts.Seeds < 1 {
		opts.Seeds = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	var samples []string
	for _, s := range opts.Samples {
		if s = strings.TrimSpace(s); s != "" {
			samples = append(samples, s)
		}
	}
	if len(samples) == 0 {
		return MonitorReport{}, fmt.Errorf("no samples to monitor")
	}
	// Resolve up front so a typo fails fast, before any run.
	for _, name := range samples {
		if _, err := malware.Resolve(name); err != nil {
			return MonitorReport{}, err
		}
	}

	type job struct {
		sample string
		seed   int64
	}
	jobs := make([]job, 0, len(samples)*opts.Seeds)
	for _, sample := range samples {
		for seed := 1; seed <= opts.Seeds; seed++ {
			jobs = append(jobs, job{sample, int64(seed)})
		}
	}

	profile := winsim.ProfileBareMetalSandbox
	rows := make([]MonitorRow, len(jobs))
	var virtual int64
	var mu sync.Mutex
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lab := &analysis.Lab{Profile: profile, Config: core.RecommendedConfig(string(profile))}
			for i := range work {
				spec, err := malware.Resolve(jobs[i].sample)
				if err != nil {
					rows[i] = MonitorRow{Specimen: jobs[i].sample, Seed: jobs[i].seed, Error: err.Error()}
					continue
				}
				res := lab.RunMonitoredSeeded(spec, jobs[i].seed, analysis.MonitorOptions{})
				row := MonitorRow{
					Specimen:       spec.ID,
					Family:         spec.Family,
					Source:         string(spec.Source),
					Seed:           jobs[i].seed,
					Category:       res.Category.String(),
					Deterred:       res.Outcome.Deterred,
					TimeToDetectNS: int64(res.Outcome.TimeToDetect),
					FilesLost:      res.Outcome.FilesLost,
					CanaryTouched:  res.Outcome.CanariesTouched,
					Detections:     len(res.Outcome.Detections),
				}
				if len(res.Outcome.Detections) > 0 {
					row.FirstSignal = res.Outcome.Detections[0].Signal
				}
				if res.Err != nil {
					row.Error = res.Err.Error()
				}
				rows[i] = row
				mu.Lock()
				virtual += int64(res.VirtualTime)
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	report := MonitorReport{
		Benchmark:  "scarebench-monitor",
		Profile:    string(profile),
		Samples:    samples,
		Seeds:      opts.Seeds,
		Workers:    opts.Workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Runs:       len(rows),
		WallS:      wall.Seconds(),
		VirtualNSS: virtual,
		Rows:       rows,
	}
	lost := make([]int, 0, len(rows))
	detect := make([]int64, 0, len(rows))
	for _, row := range rows {
		if row.Error != "" {
			report.Errors++
			continue
		}
		if row.Deterred {
			report.Deterred++
			lost = append(lost, row.FilesLost)
			detect = append(detect, row.TimeToDetectNS)
		}
		if row.FilesLost > report.MaxFilesLost {
			report.MaxFilesLost = row.FilesLost
		}
	}
	if report.Runs > 0 {
		report.DetectionRate = float64(report.Deterred) / float64(report.Runs)
	}
	if len(lost) > 0 {
		sort.Ints(lost)
		report.MedianFilesLost = float64(lost[len(lost)/2])
	}
	if len(detect) > 0 {
		sort.Slice(detect, func(a, b int) bool { return detect[a] < detect[b] })
		report.MedianTimeToDetectNS = detect[len(detect)/2]
	}
	if wall > 0 {
		report.RunsPerS = float64(report.Runs) / wall.Seconds()
	}
	return report, nil
}

package main

import (
	"strings"
	"testing"
)

// The -front measurement machinery end to end, sized small: a baseline
// and one fleet of two, every sweep complete and error-free, the shard
// accounting consistent. The real gate values are exercised by make
// bench-front.
func TestBenchFront(t *testing.T) {
	if testing.Short() {
		t.Skip("front fleet benchmarks take a few seconds")
	}
	report, err := benchFront(frontOptions{Fleets: []int{2}, Seeds: 1, Quota: 8})
	if err != nil {
		t.Fatalf("benchFront: %v", err)
	}
	jobs := len(sweepSpecimens())
	if report.Jobs != jobs {
		t.Fatalf("jobs = %d, want %d", report.Jobs, jobs)
	}
	if len(report.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(report.Runs))
	}
	for _, run := range []FrontRun{report.Baseline, report.Runs[0]} {
		if run.Cold.Completed != jobs || run.Warm.Completed != jobs {
			t.Fatalf("N=%d incomplete: cold %d warm %d of %d", run.Backends, run.Cold.Completed, run.Warm.Completed, jobs)
		}
		if run.Cold.Errors != 0 || run.Warm.Errors != 0 {
			t.Fatalf("N=%d sweep errors: cold %d warm %d", run.Backends, run.Cold.Errors, run.Warm.Errors)
		}
		if run.ScalingX <= 0 || run.ScalingBasis < 1 {
			t.Fatalf("N=%d scaling unmeasured: %+v", run.Backends, run)
		}
	}
	fleet := report.Runs[0]
	if fleet.ScalingBasis > 2 {
		t.Fatalf("fleet of 2 has basis %d", fleet.ScalingBasis)
	}
	cells := 0
	for _, b := range fleet.PerBackend {
		if b.Cells == 0 {
			t.Fatalf("backend %d ran no cells; sharding broken", b.Index)
		}
		if b.LabRuns == 0 || b.CacheHitRate == 0 {
			t.Fatalf("backend %d counters unmeasured: %+v", b.Index, b)
		}
		cells += b.Cells
	}
	if cells != jobs {
		t.Fatalf("shard cells sum to %d, want %d", cells, jobs)
	}
	if !strings.Contains(report.String(), "scaling") {
		t.Fatalf("report rendering missing scaling: %s", report)
	}
}

func TestParseFleets(t *testing.T) {
	got, err := parseFleets(" 2, 4 ")
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("parseFleets = %v, %v", got, err)
	}
	for _, bad := range []string{"", " , ", "2,zero", "0"} {
		if _, err := parseFleets(bad); err == nil {
			t.Errorf("parseFleets(%q) accepted", bad)
		}
	}
}

// Command pafish runs the Pafish (Paranoid Fish) reimplementation on a
// chosen simulated environment, optionally under Scarecrow, and prints the
// per-category trigger counts of Table II.
//
//	pafish -profile cuckoo-vbox-sandbox
//	pafish -profile end-user -scarecrow
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/pafish"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func main() {
	profile := flag.String("profile", string(winsim.ProfileBareMetalSandbox),
		"machine profile: clean-baremetal, baremetal-sandbox, cuckoo-vbox-sandbox, cuckoo-vbox-hardened, end-user")
	protected := flag.Bool("scarecrow", false, "deploy Scarecrow before running")
	verbose := flag.Bool("v", false, "list every triggered feature")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	if _, err := run(os.Stdout, *profile, *protected, *verbose, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pafish:", err)
		os.Exit(1)
	}
}

// run executes one Pafish battery and prints the report to w. The report
// is also returned so tests can assert on trigger counts directly.
func run(w io.Writer, profile string, protected, verbose bool, seed int64) (pafish.Report, error) {
	var report pafish.Report
	if !winsim.ValidProfile(winsim.ProfileName(profile)) {
		return report, fmt.Errorf("unknown profile %q", profile)
	}
	m := winsim.NewProfileMachine(winsim.ProfileName(profile), seed)
	sys := winapi.NewSystem(m)
	sys.RegisterProgram(`C:\pafish\pafish.exe`, func(ctx *winapi.Context) int {
		report = pafish.Run(ctx)
		return winapi.ExitOK
	})
	if protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(profile)))
		if err != nil {
			return report, err
		}
		if _, err := ctrl.LaunchTarget(`C:\pafish\pafish.exe`, "pafish.exe"); err != nil {
			return report, err
		}
	} else {
		parents := m.Procs.FindByImage("explorer.exe")
		if len(parents) == 0 {
			return report, fmt.Errorf("profile %q has no explorer.exe to parent pafish", profile)
		}
		sys.Launch(`C:\pafish\pafish.exe`, "pafish.exe", parents[0])
	}
	sys.Run(time.Minute)

	fmt.Fprintf(w, "pafish on %s (scarecrow=%v): %d/%d features triggered\n",
		profile, protected, report.Triggered(), len(report.Results))
	fmt.Fprint(w, report)
	if verbose {
		fmt.Fprintln(w, "triggered features:")
		for _, name := range report.TriggeredNames() {
			fmt.Fprintln(w, " ", name)
		}
	}
	return report, nil
}

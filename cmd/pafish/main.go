// Command pafish runs the Pafish (Paranoid Fish) reimplementation on a
// chosen simulated environment, optionally under Scarecrow, and prints the
// per-category trigger counts of Table II.
//
//	pafish -profile cuckoo-vbox-sandbox
//	pafish -profile end-user -scarecrow
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scarecrow/internal/core"
	"scarecrow/internal/pafish"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func main() {
	profile := flag.String("profile", string(winsim.ProfileBareMetalSandbox),
		"machine profile: clean-baremetal, baremetal-sandbox, cuckoo-vbox-sandbox, cuckoo-vbox-hardened, end-user")
	protected := flag.Bool("scarecrow", false, "deploy Scarecrow before running")
	verbose := flag.Bool("v", false, "list every triggered feature")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintln(os.Stderr, "pafish:", r)
			os.Exit(1)
		}
	}()

	m := winsim.NewProfileMachine(winsim.ProfileName(*profile), *seed)
	sys := winapi.NewSystem(m)
	var report pafish.Report
	sys.RegisterProgram(`C:\pafish\pafish.exe`, func(ctx *winapi.Context) int {
		report = pafish.Run(ctx)
		return winapi.ExitOK
	})
	if *protected {
		ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), core.RecommendedConfig(*profile)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pafish:", err)
			os.Exit(1)
		}
		if _, err := ctrl.LaunchTarget(`C:\pafish\pafish.exe`, "pafish.exe"); err != nil {
			fmt.Fprintln(os.Stderr, "pafish:", err)
			os.Exit(1)
		}
	} else {
		sys.Launch(`C:\pafish\pafish.exe`, "pafish.exe", m.Procs.FindByImage("explorer.exe")[0])
	}
	sys.Run(time.Minute)

	fmt.Printf("pafish on %s (scarecrow=%v): %d/%d features triggered\n",
		*profile, *protected, report.Triggered(), len(report.Results))
	fmt.Print(report)
	if *verbose {
		fmt.Println("triggered features:")
		for _, name := range report.TriggeredNames() {
			fmt.Println(" ", name)
		}
	}
}

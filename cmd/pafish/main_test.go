package main

import (
	"strings"
	"testing"
)

// The Table II smoke check: a stock VirtualBox Cuckoo trips many features
// raw; the same environment under Scarecrow trips strictly more —
// Scarecrow's deceptions deliberately make every machine look like an
// analysis rig, which is exactly what Pafish probes for. The run is
// deterministic per seed.
func TestRunVBoxSandbox(t *testing.T) {
	var out strings.Builder
	raw, err := run(&out, "cuckoo-vbox-sandbox", false, false, 1)
	if err != nil {
		t.Fatalf("raw run: %v", err)
	}
	if raw.Triggered() == 0 {
		t.Fatalf("raw Cuckoo/VBox run triggered no pafish features")
	}
	if !strings.Contains(out.String(), "features triggered") {
		t.Errorf("report output missing summary line: %q", out.String())
	}

	prot, err := run(&out, "cuckoo-vbox-sandbox", true, true, 1)
	if err != nil {
		t.Fatalf("protected run: %v", err)
	}
	if prot.Triggered() <= raw.Triggered() {
		t.Errorf("scarecrow did not amplify the analysis fingerprint: raw %d, protected %d",
			raw.Triggered(), prot.Triggered())
	}

	again, err := run(&out, "cuckoo-vbox-sandbox", false, false, 1)
	if err != nil {
		t.Fatalf("repeat run: %v", err)
	}
	if again.Triggered() != raw.Triggered() {
		t.Errorf("same seed, different trigger count: %d vs %d", again.Triggered(), raw.Triggered())
	}
}

func TestRunRejectsUnknownProfile(t *testing.T) {
	var out strings.Builder
	if _, err := run(&out, "amiga-500", false, false, 1); err == nil {
		t.Fatalf("unknown profile accepted")
	}
}

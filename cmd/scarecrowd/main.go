// Command scarecrowd serves verdicts over HTTP: a concurrent front end to
// the analysis lab cluster. Submit a specimen (catalog name or evasion
// recipe) with a machine profile and seed; get back the canonical verdict
// JSON — deactivated or survived, first trigger, suppressed behaviour.
//
//	scarecrowd -addr :8080 -workers 8 -data-dir /var/lib/scarecrowd
//
//	curl -s localhost:8080/v1/verdict -d '{"specimen":"kasidet"}'
//	curl -s localhost:8080/v1/submit  -d '{"specimen":"wannacry","seed":7}'
//	curl -s localhost:8080/v1/result/j00000002
//	curl -s localhost:8080/v1/campaign -d '{"specimens":["kasidet","locky"],"seeds":[1,2,3]}'
//	curl -sN localhost:8080/v1/campaign/c00000001/events
//	curl -s localhost:8080/statusz
//
// Identical (specimen, profile, seed) submissions are served from an LRU
// verdict cache — runs are deterministic, so the cached bytes are exact —
// and concurrent identical submissions coalesce onto a single lab run.
// Clean verdicts are additionally committed to a write-ahead log under
// -data-dir, so a restarted (or SIGKILLed) daemon serves every verdict it
// ever computed without re-running the lab; -no-persist opts out. Batch
// sweeps go through /v1/campaign, which fans a specimens × profiles ×
// seeds manifest into the worker queue under a fairness quota and streams
// per-verdict progress over SSE. A full queue answers 429 with Retry-After
// instead of blocking. SIGINT and SIGTERM drain gracefully: in-flight jobs
// finish (up to -drain), new submissions are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scarecrow/internal/campaign"
	"scarecrow/internal/service"
	"scarecrow/internal/store"
)

// options collects the daemon's flag-configurable knobs.
type options struct {
	Addr      string
	Workers   int
	Queue     int
	Cache     int
	Drain     time.Duration
	DataDir   string
	NoPersist bool
}

func main() {
	var opts options
	flag.StringVar(&opts.Addr, "addr", ":8080", "listen address")
	flag.IntVar(&opts.Workers, "workers", 0, "lab workers (0 = GOMAXPROCS)")
	flag.IntVar(&opts.Queue, "queue", 0, "job queue depth (0 = 4x workers)")
	flag.IntVar(&opts.Cache, "cache", 4096, "verdict cache entries")
	flag.DurationVar(&opts.Drain, "drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.StringVar(&opts.DataDir, "data-dir", "scarecrowd-data", "durable verdict store directory")
	flag.BoolVar(&opts.NoPersist, "no-persist", false, "serve from memory only; do not touch the verdict WAL")
	flag.Parse()
	if err := run(opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "scarecrowd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a termination signal drains it.
// ready, when non-nil, receives the bound listen address once the socket
// is open (tests bind :0 and need the resolved port).
func run(opts options, ready chan<- string) error {
	var st *store.Store
	if !opts.NoPersist {
		var err error
		st, err = store.Open(opts.DataDir, store.Options{})
		if err != nil {
			return fmt.Errorf("opening verdict store: %w", err)
		}
		defer st.Close()
	}

	srv := service.NewServer(service.Config{
		Workers:    opts.Workers,
		QueueDepth: opts.Queue,
		CacheSize:  opts.Cache,
		Store:      st,
	})
	srv.Start()
	engOpts := campaign.Options{}
	if st != nil {
		engOpts.Checkpoints = st
	}
	eng := campaign.NewEngine(srv, engOpts)
	resumed, err := eng.Resume()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scarecrowd: resuming campaigns: %v\n", err)
	}
	if len(resumed) > 0 {
		fmt.Printf("scarecrowd: resumed %d checkpointed campaign(s)\n", len(resumed))
	}

	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", opts.Addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	eng.Register(mux)
	httpSrv := &http.Server{Handler: mux}

	persisted := "persistence off"
	if st != nil {
		persisted = fmt.Sprintf("store %s: %d verdicts", st.Dir(), st.Len())
	}
	fmt.Printf("scarecrowd: serving on %s (workers=%d, %s)\n", ln.Addr(), srv.Snapshot().Workers, persisted)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		fmt.Printf("scarecrowd: %v, draining (deadline %s)\n", s, opts.Drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.Drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// and running verdicts complete, new submissions would get 503 anyway.
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scarecrowd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	// With the service drained, any campaign still sweeping aborts on its
	// next submit; Drain waits for those final (resumable) checkpoints to
	// land before the deferred store close takes the WAL away.
	if err := eng.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scarecrowd: campaign drain: %v\n", err)
	}
	stats := srv.Snapshot()
	fmt.Printf("scarecrowd: drained. %d runs, %d cache hits (%.0f%% hit rate), %d store hits, %d coalesced, %d rejected\n",
		stats.LabRuns, stats.CacheHits, 100*stats.CacheHitRate, stats.StoreHits, stats.Coalesced, stats.Rejected)
	return nil
}

// Command scarecrowd serves verdicts over HTTP: a concurrent front end to
// the analysis lab cluster. Submit a specimen (catalog name or evasion
// recipe) with a machine profile and seed; get back the canonical verdict
// JSON — deactivated or survived, first trigger, suppressed behaviour.
//
//	scarecrowd -addr :8080 -workers 8
//
//	curl -s localhost:8080/v1/verdict -d '{"specimen":"kasidet"}'
//	curl -s localhost:8080/v1/submit  -d '{"specimen":"wannacry","seed":7}'
//	curl -s localhost:8080/v1/result/j00000002
//	curl -s localhost:8080/statusz
//
// Identical (specimen, profile, seed) submissions are served from an LRU
// verdict cache — runs are deterministic, so the cached bytes are exact —
// and concurrent identical submissions coalesce onto a single lab run. A
// full queue answers 429 with Retry-After instead of blocking. SIGINT and
// SIGTERM drain gracefully: in-flight jobs finish (up to -drain), new
// submissions are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"scarecrow/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "lab workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
		cache   = flag.Int("cache", 4096, "verdict cache entries")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queue, *cache, *drain, nil); err != nil {
		fmt.Fprintln(os.Stderr, "scarecrowd:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until a termination signal drains it.
// ready, when non-nil, receives the bound listen address once the socket
// is open (tests bind :0 and need the resolved port).
func run(addr string, workers, queue, cache int, drain time.Duration, ready chan<- string) error {
	srv := service.NewServer(service.Config{
		Workers:    workers,
		QueueDepth: queue,
		CacheSize:  cache,
	})
	srv.Start()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Printf("scarecrowd: serving on %s (workers=%d)\n", ln.Addr(), srv.Snapshot().Workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		fmt.Printf("scarecrowd: %v, draining (deadline %s)\n", s, drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue: queued
	// and running verdicts complete, new submissions would get 503 anyway.
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "scarecrowd: http shutdown: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Snapshot()
	fmt.Printf("scarecrowd: drained. %d runs, %d cache hits (%.0f%% hit rate), %d coalesced, %d rejected\n",
		st.LabRuns, st.CacheHits, 100*st.CacheHitRate, st.Coalesced, st.Rejected)
	return nil
}

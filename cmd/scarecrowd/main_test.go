package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bootDaemon starts run() in a goroutine and waits for the listen
// address. The returned channel carries run's exit status.
func bootDaemon(t *testing.T, opts options) (string, chan error) {
	t.Helper()
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	if opts.Drain == 0 {
		opts.Drain = 30 * time.Second
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(opts, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, done
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready")
	}
	return "", nil
}

// drainDaemon SIGTERMs the test process and waits for run to return.
func drainDaemon(t *testing.T, done chan error) {
	t.Helper()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM")
	}
}

// The daemon end to end: boot on an ephemeral port, serve a verdict and a
// cache-hit replay, then drain cleanly on SIGTERM.
func TestDaemonServesAndDrains(t *testing.T) {
	base, done := bootDaemon(t, options{Workers: 2, Queue: 8, Cache: 64, NoPersist: true})

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body := []byte(`{"specimen":"kasidet","seed":3}`)
	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	v1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: status %d, body %s", resp.StatusCode, v1)
	}
	var doc map[string]any
	if err := json.Unmarshal(v1, &doc); err != nil {
		t.Fatalf("verdict not JSON: %v", err)
	}
	if doc["category"] == "error" {
		t.Fatalf("verdict errored: %s", v1)
	}

	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict replay: %v", err)
	}
	v2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Errorf("replay not served from cache")
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("replay bytes differ:\n%s\nvs\n%s", v1, v2)
	}

	drainDaemon(t, done)
}

// -data-dir makes verdicts durable across process generations: the second
// boot serves the first boot's verdict as a cache hit without a lab run.
func TestDaemonPersistsVerdictsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"specimen":"kasidet","seed":41}`)

	base, done := bootDaemon(t, options{Workers: 2, Queue: 8, Cache: 64, DataDir: dir})
	resp, err := http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	v1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") == "hit" {
		t.Fatalf("first-ever verdict claims to be a cache hit")
	}
	drainDaemon(t, done)

	base, done = bootDaemon(t, options{Workers: 2, Queue: 8, Cache: 64, DataDir: dir})
	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("replay verdict: %v", err)
	}
	v2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Fatalf("restarted daemon did not serve the WAL verdict as a hit")
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("restart verdict bytes differ:\n%s\nvs\n%s", v1, v2)
	}
	drainDaemon(t, done)
}

// The campaign API is mounted: launch a small sweep and stream it to the
// terminal summary.
func TestDaemonServesCampaigns(t *testing.T) {
	base, done := bootDaemon(t, options{Workers: 2, Queue: 16, Cache: 64, NoPersist: true})

	resp, err := http.Post(base+"/v1/campaign", "application/json",
		strings.NewReader(`{"specimens":["kasidet","locky"]}`))
	if err != nil {
		t.Fatalf("campaign launch: %v", err)
	}
	var launched struct {
		ID     string `json:"id"`
		Total  int    `json:"total"`
		Events string `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&launched); err != nil {
		t.Fatalf("decoding launch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || launched.Total != 2 {
		t.Fatalf("launch: status %d, %+v", resp.StatusCode, launched)
	}

	stream, err := http.Get(base + launched.Events)
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer stream.Body.Close()
	var sawSummary bool
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: summary") {
			sawSummary = true
		}
	}
	if !sawSummary {
		t.Fatalf("campaign stream ended without a summary event")
	}

	drainDaemon(t, done)
}

func TestRunRejectsBadAddr(t *testing.T) {
	err := run(options{Addr: "256.256.256.256:99999", Workers: 1, Queue: 1, Cache: 1, Drain: time.Second, NoPersist: true}, nil)
	if err == nil || !strings.Contains(err.Error(), "listening") {
		t.Fatalf("bad addr: err = %v, want listen failure", err)
	}
}

// A data dir that cannot be created fails boot loudly rather than
// silently serving without persistence.
func TestRunRejectsUnusableDataDir(t *testing.T) {
	err := run(options{Addr: "127.0.0.1:0", DataDir: "/proc/nonexistent/store", Drain: time.Second}, nil)
	if err == nil || !strings.Contains(err.Error(), "verdict store") {
		t.Fatalf("bad data dir: err = %v, want store open failure", err)
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The daemon end to end: boot on an ephemeral port, serve a verdict and a
// cache-hit replay, then drain cleanly on SIGTERM.
func TestDaemonServesAndDrains(t *testing.T) {
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 2, 8, 64, 30*time.Second, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body := []byte(`{"specimen":"kasidet","seed":3}`)
	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict: %v", err)
	}
	v1, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: status %d, body %s", resp.StatusCode, v1)
	}
	var doc map[string]any
	if err := json.Unmarshal(v1, &doc); err != nil {
		t.Fatalf("verdict not JSON: %v", err)
	}
	if doc["category"] == "error" {
		t.Fatalf("verdict errored: %s", v1)
	}

	resp, err = http.Post(base+"/v1/verdict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("verdict replay: %v", err)
	}
	v2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Scarecrow-Cache") != "hit" {
		t.Errorf("replay not served from cache")
	}
	if !bytes.Equal(v1, v2) {
		t.Fatalf("replay bytes differ:\n%s\nvs\n%s", v1, v2)
	}

	// SIGTERM drains; run returns nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("signalling self: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not drain after SIGTERM")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	err := run("256.256.256.256:99999", 1, 1, 1, time.Second, nil)
	if err == nil || !strings.Contains(err.Error(), "listening") {
		t.Fatalf("bad addr: err = %v, want listen failure", err)
	}
}

// Command labrunner regenerates every table and figure of the paper's
// evaluation on the simulated cluster:
//
//	labrunner -experiment table1        Table I   (13 Joe Security samples)
//	labrunner -experiment table2        Table II  (Pafish × 3 environments)
//	labrunner -experiment table3        Table III (wear-and-tear steering)
//	labrunner -experiment figure4       Figure 4  (1,054-sample MalGene corpus)
//	labrunner -experiment benign        §IV-C     (top-20 CNET programs)
//	labrunner -experiment crawl         §II-C     (public-sandbox crawl)
//	labrunner -experiment case1         Case I    (Kasidet)
//	labrunner -experiment case2         Case II   (WannaCry + Locky)
//	labrunner -experiment isolation     §VI-B     (profile isolation)
//	labrunner -experiment overhead      §III      (hook overhead)
//	labrunner -experiment all           everything above
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/crawler"
	"scarecrow/internal/malware"
)

// noPool disables the lab's template snapshot pool, rebuilding every
// machine from scratch (the pre-pool behaviour; results are identical
// either way, only slower).
var noPool bool

// newLab builds an experiment lab honoring the -no-pool flag.
func newLab(seed int64) *analysis.Lab {
	lab := analysis.NewLab(seed)
	lab.DisablePooling = noPool
	return lab
}

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	seed := flag.Int64("seed", 42, "deterministic seed")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of tables")
	flag.BoolVar(&noPool, "no-pool", false, "rebuild machines from scratch instead of cloning the template snapshot")
	flag.Parse()
	var err error
	if *asJSON {
		err = runJSON(*experiment, *seed)
	} else {
		err = run(*experiment, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "labrunner:", err)
		os.Exit(1)
	}
}

// runJSON emits one experiment's report as JSON (for scripting around the
// lab). Experiments that only print prose are not exposed here.
func runJSON(experiment string, seed int64) error {
	builders := map[string]func(int64) (any, error){
		"table1": func(s int64) (any, error) { return analysis.Table1(newLab(s)), nil },
		"table2": func(s int64) (any, error) { return analysis.Table2(s) },
		"table3": func(s int64) (any, error) { return analysis.Table3(s) },
		"figure4": func(s int64) (any, error) {
			return analysis.Figure4(newLab(s), malware.MalGeneCorpus()), nil
		},
		"benign":    func(s int64) (any, error) { return analysis.RunBenign(s) },
		"kernel":    func(s int64) (any, error) { return analysis.KernelExtension(s), nil },
		"fullstack": func(s int64) (any, error) { return analysis.FullStack(s), nil },
		"crawl": func(s int64) (any, error) {
			r := crawler.CrawlPublicSandboxes(s)
			return map[string]any{
				"files": len(r.Files), "processes": len(r.Processes),
				"registry_keys": len(r.RegistryKeys), "configs": r.SandboxConfigs,
			}, nil
		},
	}
	builder, ok := builders[experiment]
	if !ok {
		return fmt.Errorf("experiment %q has no JSON form", experiment)
	}
	report, err := builder(seed)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

func run(experiment string, seed int64) error {
	runners := map[string]func(int64) error{
		"table1":    table1,
		"table2":    table2,
		"table3":    table3,
		"figure4":   figure4,
		"benign":    benignImpact,
		"crawl":     crawl,
		"case1":     case1,
		"case2":     case2,
		"isolation": isolation,
		"overhead":  overhead,
		"kernel":    kernelExt,
		"fullstack": fullStack,
		"survey":    survey,
		"baseline":  baseline,
		"toolkill":  toolKill,
	}
	if experiment == "all" {
		for _, name := range []string{
			"table1", "figure4", "table2", "table3", "benign",
			"crawl", "case1", "case2", "isolation", "toolkill",
			"kernel", "fullstack", "baseline", "survey", "overhead",
		} {
			if err := runners[name](seed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	runner, ok := runners[experiment]
	if !ok {
		return fmt.Errorf("unknown experiment %q", experiment)
	}
	return runner(seed)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table1(seed int64) error {
	header("Table I — effectiveness on the Joe Security samples")
	report := analysis.Table1(newLab(seed))
	fmt.Print(report)
	fmt.Println(report.Health)
	return nil
}

func table2(seed int64) error {
	header("Table II — Pafish across three environments, with/without Scarecrow")
	report, err := analysis.Table2(seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func table3(seed int64) error {
	header("Table III — wear-and-tear artifacts faked by Scarecrow")
	report, err := analysis.Table3(seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func figure4(seed int64) error {
	header("Figure 4 — effectiveness on the MalGene corpus (this takes a while)")
	start := time.Now()
	report := analysis.Figure4(newLab(seed), malware.MalGeneCorpus())
	fmt.Print(report)
	fmt.Println(report.Health)
	fmt.Printf("(corpus evaluated in %.1fs wall time)\n", time.Since(start).Seconds())
	return nil
}

func benignImpact(seed int64) error {
	header("§IV-C — impact on the top-20 CNET programs")
	report, err := analysis.RunBenign(seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func crawl(seed int64) error {
	header("§II-C — public-sandbox crawl and diff")
	start := time.Now()
	r := crawler.CrawlPublicSandboxes(seed)
	fmt.Println(analysis.CrawlReport{
		Files: len(r.Files), Processes: len(r.Processes),
		RegistryKeys: len(r.RegistryKeys), Elapsed: time.Since(start),
	})
	fmt.Println("example unique processes:", r.Processes[:5])
	for _, cfg := range r.SandboxConfigs {
		fmt.Printf("sandbox config: disk=%dGB ram=%dGB cores=%d host=%s user=%s\n",
			cfg.DiskTotalBytes>>30, cfg.RAMBytes>>30, cfg.NumCores, cfg.ComputerName, cfg.UserName)
	}
	return nil
}

func case1(seed int64) error {
	header("Case I — Kasidet's comprehensive evasive disjunction")
	lab := newLab(seed)
	res := lab.RunSample(malware.Kasidet(), 1)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("without scarecrow: %s\n", res.BehaviourWithout())
	fmt.Printf("with scarecrow:    %s\n", res.BehaviourWith())
	fmt.Printf("deactivated: %v, first trigger: %s\n", res.Verdict.Deactivated, res.FirstTrigger())
	fmt.Printf("the disjunction has %d propositions; one deceptive answer sufficed\n",
		len(malware.Kasidet().Checks))
	return nil
}

func case2(seed int64) error {
	header("Case II — deactivating ransomware")
	for _, s := range []func() *malware.Specimen{malware.WannaCry, malware.Locky} {
		report, err := analysis.RunCaseStudy(s(), seed)
		if err != nil {
			return err
		}
		fmt.Print(report)
	}
	return nil
}

func isolation(seed int64) error {
	header("§VI-B — profile isolation against a Scarecrow-aware detector")
	detector := malware.ScarecrowAware()
	stock := newLab(seed)
	res := stock.RunSample(detector, 1)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("stock deployment:    deactivated=%v (conflicting vendors unmask the engine)\n",
		res.Verdict.Deactivated)
	iso := newLab(seed)
	iso.Config.ProfileIsolation = true
	res = iso.RunSample(detector, 1)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("profile isolation:   deactivated=%v (one consistent vendor identity)\n",
		res.Verdict.Deactivated)
	return nil
}

func kernelExt(seed int64) error {
	header("§VI-A extension — kernel syscall-gate hooking vs raw-syscall bypass")
	fmt.Print(analysis.KernelExtension(seed))
	return nil
}

func fullStack(seed int64) error {
	header("§VI-A ladder — user hooks vs kernel gate vs deception hypervisor (full corpus)")
	fmt.Print(analysis.FullStack(seed))
	return nil
}

func baseline(seed int64) error {
	header("Motivation — how much of the corpus evades stock analysis rigs (no Scarecrow)")
	full := malware.MalGeneCorpus()
	var slice []*malware.Specimen
	for i := 0; i < len(full); i += 4 {
		slice = append(slice, full[i])
	}
	report, err := analysis.EvasionBaseline(slice, seed)
	if err != nil {
		return err
	}
	fmt.Println(report)
	for rig, n := range report.PerRig {
		fmt.Printf("  evaded %s: %d\n", rig, n)
	}
	return nil
}

func survey(seed int64) error {
	header("§II-C learning at scale — MalGene signature survey over a corpus slice")
	full := malware.MalGeneCorpus()
	var slice []*malware.Specimen
	for i := 0; i < len(full); i += 4 {
		slice = append(slice, full[i])
	}
	report, err := analysis.SurveySignatures(slice, seed)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func toolKill(seed int64) error {
	header("§II-B(b) — counter-forensic tool killing vs protected decoys")
	res := newLab(seed).RunSample(malware.ToolKiller(), 1)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("without scarecrow: %s\n", res.BehaviourWithout())
	fmt.Printf("with scarecrow:    %s (decoy tools refused termination)\n", res.BehaviourWith())
	fmt.Printf("deactivated: %v\n", res.Verdict.Deactivated)
	return nil
}

func overhead(int64) error {
	header("§III — per-call deception overhead (virtual time)")
	unhooked, hooked, err := analysis.HookOverhead()
	if err != nil {
		return err
	}
	fmt.Printf("RegOpenKeyEx unhooked: %v, hooked: %v\n", unhooked, hooked)
	return nil
}

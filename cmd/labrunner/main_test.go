package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunEachLightExperiment(t *testing.T) {
	// figure4 and baseline are exercised by the heavy suites; everything
	// else runs quickly enough for a unit test.
	for _, name := range []string{
		"table1", "table2", "table3", "benign",
		"case1", "case2", "isolation", "toolkill", "kernel", "overhead",
	} {
		name := name
		t.Run(name, func(t *testing.T) {
			if err := run(name, 42); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunJSON(t *testing.T) {
	if err := runJSON("table2", 1); err != nil {
		t.Fatal(err)
	}
	if err := runJSON("case1", 1); err == nil {
		t.Error("prose-only experiment should have no JSON form")
	}
}

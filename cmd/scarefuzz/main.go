// Command scarefuzz hunts camouflage gaps: it runs a coverage-guided
// fuzzing campaign that composes evasive predicates from the evasion
// catalog, evaluates them through the analysis lab, and minimizes every
// survivor into the smallest predicate that defeats the deception DB.
//
//	scarefuzz -budget 5000 -seed 1                  # hunt, print gap reports
//	scarefuzz -budget 5000 -emit-gaps out/gaps      # also write replayable fixtures
//	scarefuzz -replay internal/synth/testdata/gaps/9381ffe49577e232.json
//
// Exit status: 0 on a clean run (replay matched, or hunt completed), 1 on
// an operational error, 2 when -replay found a fixture that no longer
// replays to its recorded expectation (a regression) or when -fail-on-db-gaps
// saw a missing-db-entry gap (the deception DB has a fixable hole).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"scarecrow/internal/analysis"
	"scarecrow/internal/synth"
	"scarecrow/internal/winsim"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "campaign seed (generation and machine seeds)")
		budget   = flag.Int("budget", 2000, "generations to evaluate")
		maxDepth = flag.Int("max-depth", 3, "max predicate tree depth")
		workers  = flag.Int("workers", 0, "evaluation fan-out width (0 = GOMAXPROCS)")
		profile  = flag.String("profile", string(winsim.ProfileBareMetalSandbox), "machine profile")
		replay   = flag.String("replay", "", "replay one fixture file instead of fuzzing")
		emitGaps = flag.String("emit-gaps", "", "directory to write minimized-gap fixtures into (empty = report only)")
		jsonOut  = flag.Bool("json", false, "print the campaign report as JSON")
		failDB   = flag.Bool("fail-on-db-gaps", false, "exit 2 when any missing-db-entry gap is found")
	)
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}
	os.Exit(runHunt(*seed, *budget, *maxDepth, *workers, *profile, *emitGaps, *jsonOut, *failDB))
}

// runReplay re-evaluates one fixture and compares against its recorded
// expectation.
func runReplay(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarefuzz:", err)
		return 1
	}
	f, err := synth.DecodeFixture(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarefuzz:", err)
		return 1
	}
	ev := synth.NewEvaluator(f.Seed)
	if f.Profile != "" {
		ev.Profile = winsim.ProfileName(f.Profile)
	}
	out := ev.Evaluate(f.Predicate)
	if out.Err != nil {
		fmt.Fprintln(os.Stderr, "scarefuzz: replay error:", out.Err)
		return 1
	}
	got := out.Category.String()
	fmt.Printf("fixture   %s\npredicate %s\nprofile   %s seed %d\nexpect    %s\ngot       %s\n",
		f.Fingerprint, f.Predicate.Canonical(), f.Profile, f.Seed, f.Expect, got)
	if f.Expect != "" && got != f.Expect {
		fmt.Fprintf(os.Stderr, "scarefuzz: REGRESSION: fixture %s replayed to %s, want %s\n", f.Fingerprint, got, f.Expect)
		return 2
	}
	fmt.Println("ok")
	return 0
}

// runHunt runs one budgeted campaign and reports (optionally emitting
// fixtures for the minimized gaps).
func runHunt(seed int64, budget, maxDepth, workers int, profile, emitGaps string, jsonOut, failDB bool) int {
	f := synth.NewFuzzer(seed, maxDepth)
	f.Ev.Profile = winsim.ProfileName(profile)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f.Ev.Workers = workers

	start := time.Now()
	rep := f.Run(budget)
	wall := time.Since(start)

	if jsonOut {
		buf, err := json.MarshalIndent(struct {
			Generations    int               `json:"generations"`
			LabRuns        int               `json:"lab_runs"`
			WallS          float64           `json:"wall_s"`
			UniqueCoverage int               `json:"unique_coverage"`
			Gaps           []synth.GapReport `json:"gaps"`
		}{rep.Generations, rep.LabRuns, wall.Seconds(), rep.UniqueCoverage, rep.Gaps}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarefuzz:", err)
			return 1
		}
		fmt.Println(string(buf))
	} else {
		fmt.Printf("scarefuzz: %d generations (%d lab runs) in %.2fs, %d unique coverage keys, %d minimized gaps\n",
			rep.Generations, rep.LabRuns, wall.Seconds(), rep.UniqueCoverage, len(rep.Gaps))
		for _, g := range rep.Gaps {
			fmt.Printf("  [%s] %s\n      techniques: %v\n      %s\n", g.Kind, g.Canonical, g.Techniques, g.Advice)
		}
	}

	if emitGaps != "" {
		for _, g := range rep.Gaps {
			// Candidate fixtures record the OBSERVED category (survived —
			// the gap is still open). When a fix lands, flip expect to
			// "deactivated" and promote the file into
			// internal/synth/testdata/gaps/ as a regression fixture.
			n := rep.MinimizedGaps[g.Fingerprint]
			path, err := synth.WriteFixture(emitGaps, synth.Fixture{
				Predicate: n,
				Profile:   profile,
				Seed:      f.Ev.Seed,
				Expect:    analysis.VerdictSurvived.String(),
				Note:      "candidate gap (" + string(g.Kind) + "): " + g.Advice,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "scarefuzz:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "scarefuzz: wrote %s\n", path)
		}
	}

	if failDB {
		for _, g := range rep.Gaps {
			if g.Kind == synth.GapMissingDBEntry {
				fmt.Fprintf(os.Stderr, "scarefuzz: missing-db-entry gap found: %s (%s)\n", g.Canonical, g.Advice)
				return 2
			}
		}
	}
	return 0
}

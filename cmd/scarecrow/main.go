// Command scarecrow launches one of the built-in specimens on a simulated
// machine, with and without the Scarecrow controller, and prints the
// behavioural comparison and trigger report — the scarecrow.exe experience
// of Figure 2, in the simulation.
//
//	scarecrow -sample wannacry -profile end-user
//	scarecrow -sample joe:61f847b
//	scarecrow -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scarecrow/internal/analysis"
	"scarecrow/internal/core"
	"scarecrow/internal/malware"
	"scarecrow/internal/trace"
	"scarecrow/internal/winapi"
	"scarecrow/internal/winsim"
)

func main() {
	sample := flag.String("sample", "wannacry", "specimen: wannacry, locky, kasidet, scaware, joe:<id>, mg:<id>")
	profile := flag.String("profile", string(winsim.ProfileEndUser), "machine profile")
	seed := flag.Int64("seed", 42, "deterministic seed")
	list := flag.Bool("list", false, "list available specimens and exit")
	traceOut := flag.String("trace", "", "write the protected run's kernel trace (JSON lines) to this file")
	configPath := flag.String("config", "", "JSON deployment configuration (see core.FileConfig)")
	flag.Parse()

	if *list {
		printList()
		return
	}
	spec, err := resolve(*sample)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scarecrow:", err)
		os.Exit(1)
	}
	cfg := core.RecommendedConfig(*profile)
	db := core.NewDB()
	if *configPath != "" {
		fc, err := core.LoadConfigFile(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scarecrow:", err)
			os.Exit(1)
		}
		cfg = fc.Apply(cfg, db)
	}
	lab := &analysis.Lab{
		Profile: winsim.ProfileName(*profile),
		Seed:    *seed,
		Config:  cfg,
		DB:      db,
	}
	res := lab.RunSample(spec, 1)

	fmt.Printf("sample %s (%s) on %s\n", spec.ID, spec.Family, *profile)
	fmt.Printf("  notes:             %s\n", spec.Notes)
	fmt.Printf("  without scarecrow: %s\n", res.BehaviourWithout())
	fmt.Printf("  with scarecrow:    %s\n", res.BehaviourWith())
	fmt.Printf("  deactivated:       %v\n", res.Verdict.Deactivated)
	fmt.Printf("  first trigger:     %s\n", res.FirstTrigger())
	if n := len(res.Protected.Triggers); n > 1 {
		fmt.Printf("  total triggers:    %d\n", n)
		hist := make(map[core.Category]int)
		for _, tr := range res.Protected.Triggers {
			hist[tr.Category]++
		}
		for cat, count := range hist {
			fmt.Printf("    %-10s %d\n", cat, count)
		}
	}
	for _, alert := range res.Protected.Alerts {
		fmt.Printf("  ALERT: %s\n", alert)
	}
	if *traceOut != "" {
		if err := dumpTrace(*traceOut, lab, spec); err != nil {
			fmt.Fprintln(os.Stderr, "scarecrow:", err)
			os.Exit(1)
		}
		fmt.Printf("  trace written:     %s\n", *traceOut)
	}
}

// dumpTrace re-runs the sample under Scarecrow and archives the full
// kernel trace as JSON lines (the Figure 3 proxy format).
func dumpTrace(path string, lab *analysis.Lab, spec *malware.Specimen) error {
	m := winsim.NewProfileMachine(lab.Profile, lab.Seed)
	sys := winapi.NewSystem(m)
	spec.Register(sys)
	m.FS.Touch(spec.Image, 180<<10)
	ctrl, err := core.Deploy(sys, core.NewEngine(core.NewDB(), lab.Config))
	if err != nil {
		return err
	}
	if _, err := ctrl.LaunchTarget(spec.Image, spec.ID); err != nil {
		return err
	}
	sys.Run(analysis.ObservationWindow)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteJSONL(f, m.Tracer.Events())
}

// resolve looks the sample up in the shared specimen catalog
// (internal/malware), the same resolver the scarecrowd service uses.
func resolve(name string) (*malware.Specimen, error) {
	s, err := malware.Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("unknown sample %q (try -list)", name)
	}
	return s, nil
}

func printList() {
	fmt.Println("case studies:", strings.Join(malware.CatalogNames(), ", "))
	fmt.Println("joe security samples (Table I):")
	for _, s := range malware.JoeSecuritySamples() {
		fmt.Printf("  joe:%s  %s\n", s.ID, s.Notes)
	}
	fmt.Println("malgene corpus: mg:mg0000 .. mg:mg1053 (1,054 samples, 61 families)")
}

package main

import "testing"

func TestResolveSamples(t *testing.T) {
	known := []string{"wannacry", "locky", "kasidet", "scaware", "spawner", "joe:cbdda64", "mg:mg0000"}
	for _, name := range known {
		if _, err := resolve(name); err != nil {
			t.Errorf("resolve(%q): %v", name, err)
		}
	}
	for _, name := range []string{"", "nope", "joe:zzz", "mg:zzz"} {
		if _, err := resolve(name); err == nil {
			t.Errorf("resolve(%q) accepted", name)
		}
	}
}
